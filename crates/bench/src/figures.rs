//! Figure-reproduction drivers.
//!
//! One function per figure/ablation; each returns structured data that the
//! binaries print and the integration tests assert on. All simulated time;
//! speed-ups are relative to the application's own single-process solo run
//! (the paper's definition).

use std::collections::HashMap;

use desim::{SimDur, SimTime};
use metrics::{runnable_app_series, runnable_total_series, Series};
use workloads::Presets;

use crate::scenario::{run_scenario, run_solo, AppKind, AppLaunch, PolicyKind, SimEnv};

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDur::from_secs(secs)
}

/// Generous per-run wall-clock cap (simulated).
const LIMIT: SimTime = SimTime(3_600 * 1_000_000_000);

/// Single-process solo baselines, used as speed-up denominators.
pub fn baselines(env: &SimEnv, presets: &Presets, kinds: &[AppKind]) -> HashMap<AppKind, f64> {
    kinds
        .iter()
        .map(|&k| (k, run_solo(env, presets, k, 1, None, LIMIT).wall))
        .collect()
}

/// Figure 1: matmul and FFT run *simultaneously*, no process control, the
/// process count per application swept over `nprocs`. Returns one speed-up
/// series per application.
pub fn fig1(env: &SimEnv, presets: &Presets, nprocs: &[u32]) -> Vec<Series> {
    let kinds = [AppKind::Matmul, AppKind::Fft];
    let base = baselines(env, presets, &kinds);
    let mut series: Vec<Series> = kinds
        .iter()
        .map(|k| Series::new(k.name().to_string()))
        .collect();
    for &n in nprocs {
        let launches: Vec<AppLaunch> = kinds
            .iter()
            .map(|&kind| AppLaunch {
                kind,
                nprocs: n,
                start: SimTime::ZERO,
            })
            .collect();
        let (outs, _) = run_scenario(env, presets, &launches, None, LIMIT);
        for (s, o) in series.iter_mut().zip(&outs) {
            s.push(f64::from(n), base[&o.kind] / o.wall);
        }
    }
    series
}

/// Figure 3: each application run alone, process count swept, with the
/// unmodified package vs process control. Returns, per application, the
/// pair `(unmodified, controlled)` speed-up series.
pub fn fig3(
    env: &SimEnv,
    presets: &Presets,
    nprocs: &[u32],
    poll: SimDur,
) -> Vec<(AppKind, Series, Series)> {
    let base = baselines(env, presets, &AppKind::ALL);
    AppKind::ALL
        .iter()
        .map(|&kind| {
            let mut plain = Series::new(format!("{} unmodified", kind.name()));
            let mut ctl = Series::new(format!("{} controlled", kind.name()));
            for &n in nprocs {
                let o = run_solo(env, presets, kind, n, None, LIMIT);
                plain.push(f64::from(n), base[&kind] / o.wall);
                let o = run_solo(env, presets, kind, n, Some(poll), LIMIT);
                ctl.push(f64::from(n), base[&kind] / o.wall);
            }
            (kind, plain, ctl)
        })
        .collect()
}

/// One application's Figure-4 measurement.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    /// Application.
    pub kind: AppKind,
    /// Start time (seconds).
    pub start: f64,
    /// Wall-clock runtime without process control.
    pub uncontrolled: f64,
    /// Wall-clock runtime with process control.
    pub controlled: f64,
}

/// The Figure-4/5 scenario: fft, gauss, and matmul started `stagger`
/// apart (10 s in the paper), `nprocs` processes each.
pub fn fig4_launches(nprocs: u32, stagger: SimDur) -> Vec<AppLaunch> {
    vec![
        AppLaunch {
            kind: AppKind::Fft,
            nprocs,
            start: SimTime::ZERO,
        },
        AppLaunch {
            kind: AppKind::Gauss,
            nprocs,
            start: SimTime::ZERO + stagger,
        },
        AppLaunch {
            kind: AppKind::Matmul,
            nprocs,
            start: SimTime::ZERO + stagger * 2,
        },
    ]
}

/// The paper's 10-second stagger.
pub const PAPER_STAGGER: SimDur = SimDur(10_000_000_000);

/// Figure 4: wall-clock execution times of the three-application scenario,
/// with and without process control.
pub fn fig4(env: &SimEnv, presets: &Presets, nprocs: u32, poll: SimDur) -> Vec<Fig4Row> {
    self::fig4_with_stagger(env, presets, nprocs, poll, PAPER_STAGGER)
}

/// Figure 4 with a configurable stagger (tests use a short one).
pub fn fig4_with_stagger(
    env: &SimEnv,
    presets: &Presets,
    nprocs: u32,
    poll: SimDur,
    stagger: SimDur,
) -> Vec<Fig4Row> {
    let launches = fig4_launches(nprocs, stagger);
    let (plain, _) = run_scenario(env, presets, &launches, None, LIMIT);
    let (ctl, _) = run_scenario(env, presets, &launches, Some(poll), LIMIT);
    launches
        .iter()
        .zip(plain.iter().zip(&ctl))
        .map(|(l, (p, c))| Fig4Row {
            kind: l.kind,
            start: l.start.as_secs_f64(),
            uncontrolled: p.wall,
            controlled: c.wall,
        })
        .collect()
}

/// Figure 5: runnable-process time series for the Figure-4 scenario.
/// Returns `(controlled, uncontrolled)`; each is a vector of per-app
/// series plus a final system-total series.
pub fn fig5(
    env: &SimEnv,
    presets: &Presets,
    nprocs: u32,
    poll: SimDur,
) -> (Vec<Series>, Vec<Series>) {
    self::fig5_with_stagger(env, presets, nprocs, poll, PAPER_STAGGER)
}

/// Figure 5 with a configurable stagger (tests use a short one).
pub fn fig5_with_stagger(
    env: &SimEnv,
    presets: &Presets,
    nprocs: u32,
    poll: SimDur,
    stagger: SimDur,
) -> (Vec<Series>, Vec<Series>) {
    let mut env = *env;
    env.trace = true;
    let launches = fig4_launches(nprocs, stagger);
    let run = |poll: Option<SimDur>, tag: &str| -> Vec<Series> {
        let (_, kernel) = run_scenario(&env, presets, &launches, poll, LIMIT);
        let mut out: Vec<Series> = launches
            .iter()
            .enumerate()
            .map(|(i, l)| {
                runnable_app_series(
                    kernel.trace(),
                    simkernel::AppId(i as u32),
                    format!("{} ({tag})", l.kind.name()),
                )
            })
            .collect();
        out.push(runnable_total_series(
            kernel.trace(),
            format!("total ({tag})"),
        ));
        out
    };
    let controlled = run(Some(poll), "controlled");
    let uncontrolled = run(None, "uncontrolled");
    (controlled, uncontrolled)
}

/// Ablation A: the Figure-4 scenario under every scheduling policy,
/// without process control (how far do kernel-side fixes get you?) —
/// plus FIFO *with* control for reference. Returns rows of
/// `(policy name, control?, [wall times in launch order])`.
pub fn ablation_policies(
    presets: &Presets,
    nprocs: u32,
    poll: SimDur,
) -> Vec<(String, bool, Vec<f64>)> {
    let launches = fig4_launches(nprocs, PAPER_STAGGER);
    let mut rows = Vec::new();
    for policy in PolicyKind::ALL {
        let env = SimEnv {
            policy,
            ..SimEnv::default()
        };
        let (outs, _) = run_scenario(&env, presets, &launches, None, LIMIT);
        rows.push((
            policy.name().to_string(),
            false,
            outs.iter().map(|o| o.wall).collect(),
        ));
    }
    let env = SimEnv::default();
    let (outs, _) = run_scenario(&env, presets, &launches, Some(poll), LIMIT);
    rows.push((
        "fifo-rr".to_string(),
        true,
        outs.iter().map(|o| o.wall).collect(),
    ));
    // The paper's full Section-7 vision: space partitioning AND process
    // control together.
    let env = SimEnv {
        policy: PolicyKind::Partition,
        ..SimEnv::default()
    };
    let (outs, _) = run_scenario(&env, presets, &launches, Some(poll), LIMIT);
    rows.push((
        "partition".to_string(),
        true,
        outs.iter().map(|o| o.wall).collect(),
    ));
    rows
}

/// Ablation B: sensitivity to the poll interval (the paper used 6 s).
/// Returns `(interval_secs, [wall times])`.
pub fn ablation_poll(
    env: &SimEnv,
    presets: &Presets,
    nprocs: u32,
    intervals: &[f64],
) -> Vec<(f64, Vec<f64>)> {
    let launches = fig4_launches(nprocs, PAPER_STAGGER);
    intervals
        .iter()
        .map(|&secs| {
            let (outs, _) = run_scenario(
                env,
                presets,
                &launches,
                Some(SimDur::from_secs_f64(secs)),
                LIMIT,
            );
            (secs, outs.iter().map(|o| o.wall).collect())
        })
        .collect()
}

/// Ablation C: cache-miss-penalty sensitivity — the Figure-1 pair scenario
/// on the Multimax-like vs the "scalable" (50–100-cycle miss) machine.
/// Returns `(machine, controlled?, [wall times])`.
pub fn ablation_cache(
    presets: &Presets,
    nprocs: u32,
    poll: SimDur,
) -> Vec<(&'static str, bool, Vec<f64>)> {
    let launches = [
        AppLaunch {
            kind: AppKind::Matmul,
            nprocs,
            start: t(0),
        },
        AppLaunch {
            kind: AppKind::Fft,
            nprocs,
            start: t(0),
        },
    ];
    let mut rows = Vec::new();
    for scalable in [false, true] {
        let env = SimEnv {
            scalable,
            ..SimEnv::default()
        };
        let name = if scalable { "scalable" } else { "multimax" };
        for ctl in [None, Some(poll)] {
            let (outs, _) = run_scenario(&env, presets, &launches, ctl, LIMIT);
            rows.push((name, ctl.is_some(), outs.iter().map(|o| o.wall).collect()));
        }
    }
    rows
}

/// The four cells of the CR-lock ablation: `(label, server control?,
/// CR queue lock?)`.
pub const CR_VARIANTS: [(&str, bool, bool); 4] = [
    ("none", false, false),
    ("control", true, false),
    ("crlock", false, true),
    ("both", true, true),
];

/// Ablation E: the Figure-1 pair scenario (matmul and FFT simultaneously,
/// process count swept) through all four cells of
/// {no control, server control, CR queue lock, both}. Returns one
/// speed-up series per application per cell, in [`CR_VARIANTS`] order —
/// series are named `"<app> <cell>"`.
pub fn ablation_crlock(
    env: &SimEnv,
    presets: &Presets,
    nprocs: &[u32],
    poll: SimDur,
    cr: uthreads::CrParams,
) -> Vec<Series> {
    let kinds = [AppKind::Matmul, AppKind::Fft];
    let base = baselines(env, presets, &kinds);
    let mut series = Vec::new();
    for &(label, use_control, use_cr) in &CR_VARIANTS {
        let mut per_app: Vec<Series> = kinds
            .iter()
            .map(|k| Series::new(format!("{} {}", k.name(), label)))
            .collect();
        for &n in nprocs {
            let launches: Vec<AppLaunch> = kinds
                .iter()
                .map(|&kind| AppLaunch {
                    kind,
                    nprocs: n,
                    start: SimTime::ZERO,
                })
                .collect();
            let (outs, _) = crate::scenario::run_scenario_tuned(
                env,
                presets,
                &launches,
                use_control.then_some(poll),
                use_cr.then_some(cr),
                LIMIT,
            );
            for (s, o) in per_app.iter_mut().zip(&outs) {
                s.push(f64::from(n), base[&o.kind] / o.wall);
            }
        }
        series.extend(per_app);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_env() -> SimEnv {
        SimEnv {
            cpus: 8,
            ..SimEnv::default()
        }
    }

    #[test]
    fn fig1_series_shapes() {
        let presets = Presets::tiny();
        let s = fig1(&quick_env(), &presets, &[1, 4, 8]);
        assert_eq!(s.len(), 2);
        for curve in &s {
            assert_eq!(curve.points.len(), 3);
            // Speed-up at 1 process is ~1 (it shares the machine with the
            // other app but 2 <= cpus).
            assert!((curve.points[0].1 - 1.0).abs() < 0.3, "{curve:?}");
        }
    }

    #[test]
    fn ablation_crlock_produces_all_four_cells() {
        let presets = Presets::tiny();
        let s = ablation_crlock(
            &quick_env(),
            &presets,
            &[2, 8],
            SimDur::from_secs(2),
            uthreads::CrParams::fixed(2),
        );
        // 2 apps x 4 cells, 2 points each.
        assert_eq!(s.len(), 8);
        for curve in &s {
            assert_eq!(curve.points.len(), 2);
            assert!(curve.points.iter().all(|&(_, y)| y > 0.0), "{curve:?}");
        }
        let labels: Vec<&str> = s.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"matmul crlock") && labels.contains(&"fft both"));
    }

    #[test]
    fn fig4_rows_cover_three_apps() {
        let presets = Presets::tiny();
        let stagger = SimDur::from_millis(300);
        let rows = fig4_with_stagger(&quick_env(), &presets, 8, SimDur::from_secs(2), stagger);
        assert_eq!(rows.len(), 3);
        assert!((rows[1].start - 0.3).abs() < 1e-9);
        for r in &rows {
            assert!(r.controlled > 0.0 && r.uncontrolled > 0.0);
        }
    }

    #[test]
    fn fig5_traces_present() {
        let presets = Presets::tiny();
        let (ctl, plain) = fig5_with_stagger(
            &quick_env(),
            &presets,
            8,
            SimDur::from_secs(2),
            SimDur::from_millis(300),
        );
        assert_eq!(ctl.len(), 4);
        assert_eq!(plain.len(), 4);
        // The uncontrolled total must at some point exceed the machine.
        assert!(plain[3].y_max() > 8.0);
    }
}
