//! Output plumbing shared by the figure binaries: stdout tables/charts
//! plus CSV files under `results/`.

use std::fs;
use std::path::PathBuf;

use metrics::{ascii_chart, json::series_to_json, series_csv, Series};

/// Where figure CSVs land (relative to the working directory).
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Writes `content` to `results/<name>`; prints the path. Errors are
/// reported but not fatal (the stdout tables are the primary output).
pub fn write_result(name: &str, content: &str) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match fs::write(&path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Prints a titled ASCII chart of the series and writes their CSV.
pub fn emit_series(title: &str, csv_name: &str, series: &[Series]) {
    println!("\n== {title} ==\n");
    print!("{}", ascii_chart(series, 72, 18));
    write_result(csv_name, &series_csv(series));
}

/// Parses the `--quick` CLI flag, which switches a binary to the
/// scaled-down presets (used in CI and smoke tests).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parses the `--json <path>` CLI flag: where to write the binary's
/// plotted series as machine-readable JSON, if anywhere.
pub fn json_path() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(PathBuf::from);
        }
    }
    None
}

/// Writes the series as JSON to `path` when the `--json` flag was given
/// (`path` comes from [`json_path`]). Errors are reported but not fatal,
/// matching [`write_result`].
pub fn maybe_write_json(path: &Option<PathBuf>, series: &[Series]) {
    let Some(path) = path else { return };
    match fs::write(path, series_to_json(series).render_pretty()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Presets selected by the CLI mode.
pub fn presets_from_args() -> workloads::Presets {
    if quick_mode() {
        println!("(quick mode: tiny presets)");
        workloads::Presets::tiny()
    } else {
        workloads::Presets::paper()
    }
}
