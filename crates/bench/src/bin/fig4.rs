//! Figure 4 — wall-clock execution times when three applications (fft,
//! gauss, matmul) are started at 10-second intervals with 16 processes
//! each, with and without process control.
//!
//! The paper's result: fft and gauss run far faster under control (gauss
//! 66 s → 28 s); matmul improves least because, starting last under the
//! uncontrolled run, its fresh processes enjoy high usage-decay priority.

use bench::report::{json_path, maybe_write_json, presets_from_args, quick_mode, write_result};
use bench::{fig4, fig4_with_stagger, SimEnv};
use desim::SimDur;
use metrics::{table, Series};

fn main() {
    let presets = presets_from_args();
    let env = SimEnv::default();
    let poll = SimDur::from_secs(6);
    println!(
        "Figure 4: fft/gauss/matmul staggered by 10 s, 16 processes each, {} CPUs",
        env.cpus
    );
    let rows = if quick_mode() {
        fig4_with_stagger(
            &env,
            &presets,
            8,
            SimDur::from_secs(2),
            SimDur::from_millis(500),
        )
    } else {
        fig4(&env, &presets, 16, poll)
    };
    let trows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kind.name().to_string(),
                format!("{:.0}", r.start),
                format!("{:.1}", r.uncontrolled),
                format!("{:.1}", r.controlled),
                format!("{:.2}x", r.uncontrolled / r.controlled),
            ]
        })
        .collect();
    let t = table(
        &[
            "app",
            "start(s)",
            "uncontrolled(s)",
            "controlled(s)",
            "improvement",
        ],
        &trows,
    );
    println!("\n{t}");
    write_result("fig4.txt", &t);

    // The bar pairs as series over start time, for --json consumers.
    let mut plain = Series::new("uncontrolled");
    let mut ctl = Series::new("controlled");
    for r in &rows {
        plain.push(r.start, r.uncontrolled);
        ctl.push(r.start, r.controlled);
    }
    maybe_write_json(&json_path(), &[plain, ctl]);
}
