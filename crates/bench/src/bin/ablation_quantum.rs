//! Ablation E — quantum-length sensitivity.
//!
//! Back-of-envelope, the spin waste from preempted lock holders is
//! quantum-independent: halving the quantum doubles how often holders get
//! caught but halves how long spinners wait. What *does* change is the
//! fixed per-switch overhead (context switch + cache reload), which grows
//! as the quantum shrinks. This harness runs the Figure-1 pair
//! (matmul + fft, 24 processes each, uncontrolled) across quanta.

use bench::report::{presets_from_args, quick_mode, write_result};
use bench::{run_scenario, AppKind, AppLaunch, PolicyKind, SimEnv};
use desim::{SimDur, SimTime};
use metrics::table;
use simkernel::{Kernel, KernelConfig};

const LIMIT: SimTime = SimTime(3_600 * 1_000_000_000);

/// Like `SimEnv::make_kernel` but with an explicit quantum.
fn kernel_with_quantum(cpus: usize, quantum: SimDur) -> Kernel {
    let cfg = KernelConfig::multimax()
        .with_cpus(cpus)
        .with_quantum(quantum);
    Kernel::new(cfg, PolicyKind::Fifo.build(quantum))
}

fn main() {
    let presets = presets_from_args();
    let (nprocs, quanta_ms): (u32, Vec<u64>) = if quick_mode() {
        (8, vec![50, 100])
    } else {
        (24, vec![25, 50, 100, 200, 400])
    };
    println!("Ablation E: quantum sweep (matmul+fft, {nprocs} procs each, uncontrolled)");
    let mut rows = Vec::new();
    for ms in quanta_ms {
        let mut kernel = kernel_with_quantum(16, SimDur::from_millis(ms));
        let launches = [
            AppLaunch {
                kind: AppKind::Matmul,
                nprocs,
                start: SimTime::ZERO,
            },
            AppLaunch {
                kind: AppKind::Fft,
                nprocs,
                start: SimTime::ZERO,
            },
        ];
        // Manual launch (run_scenario would rebuild the kernel with the
        // default quantum).
        let mut handles = Vec::new();
        for (i, l) in launches.iter().enumerate() {
            let id = simkernel::AppId(i as u32);
            let cfg = uthreads::ThreadsConfig::new(l.nprocs);
            handles.push((
                id,
                uthreads::launch(&mut kernel, id, cfg, l.kind.spec(&presets)),
            ));
        }
        let ids: Vec<simkernel::AppId> = handles.iter().map(|(id, _)| *id).collect();
        assert!(kernel.run_until_apps_done(&ids, LIMIT));
        let spin: f64 = ids
            .iter()
            .map(|&id| kernel.app_stats(id).spin.as_secs_f64())
            .sum();
        let refill: f64 = ids
            .iter()
            .map(|&id| kernel.app_stats(id).refill.as_secs_f64())
            .sum();
        let mut row = vec![format!("{ms}")];
        for &id in &ids {
            row.push(format!(
                "{:.1}",
                kernel.app_done_time(id).expect("done").as_secs_f64()
            ));
        }
        row.push(format!("{spin:.0}"));
        row.push(format!("{refill:.1}"));
        rows.push(row);
    }
    let t = table(
        &["quantum(ms)", "matmul(s)", "fft(s)", "spin(s)", "refill(s)"],
        &rows,
    );
    println!("\n{t}");
    write_result("ablation_quantum.txt", &t);
    // Silence the unused-import lint for the shared helpers this binary
    // intentionally bypasses.
    let _ = (run_scenario, SimEnv::default());
}
