//! Ablation A — the Figure-4 scenario under every kernel scheduling
//! policy, with no process control, plus FIFO + process control for
//! reference.
//!
//! This puts the paper's Section 3 argument to the test: coscheduling and
//! spinlock flags fix busy-waiting but keep paying context-switch and
//! cache costs; space partitioning (the paper's own Section 7 proposal)
//! and user-level process control avoid multiplexing altogether.

use bench::report::{presets_from_args, quick_mode, write_result};
use bench::{ablation_policies, fig4_launches, run_scenario, SimEnv, PAPER_STAGGER};
use desim::{SimDur, SimTime};
use metrics::table;

fn main() {
    let presets = presets_from_args();
    println!("Ablation A: scheduling policies on the Figure-4 scenario (16 CPUs)");
    let rows = if quick_mode() {
        // Reduced: fifo + cosched + partition only.
        let mut out = Vec::new();
        for policy in [
            bench::PolicyKind::Fifo,
            bench::PolicyKind::Cosched,
            bench::PolicyKind::Partition,
        ] {
            let env = SimEnv {
                cpus: 8,
                policy,
                ..SimEnv::default()
            };
            let (outs, _) = run_scenario(
                &env,
                &presets,
                &fig4_launches(8, SimDur::from_millis(500)),
                None,
                SimTime::ZERO + SimDur::from_secs(3_600),
            );
            out.push((
                policy.name().to_string(),
                false,
                outs.iter().map(|o| o.wall).collect(),
            ));
        }
        out
    } else {
        ablation_policies(&presets, 16, SimDur::from_secs(6))
    };
    let _ = PAPER_STAGGER;
    let trows: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, ctl, walls)| {
            let mut row = vec![name.clone(), if *ctl { "yes" } else { "no" }.to_string()];
            row.extend(walls.iter().map(|w| format!("{w:.1}")));
            let total: f64 = walls.iter().sum();
            row.push(format!("{total:.1}"));
            row
        })
        .collect();
    let t = table(
        &[
            "policy",
            "control",
            "fft(s)",
            "gauss(s)",
            "matmul(s)",
            "sum(s)",
        ],
        &trows,
    );
    println!("\n{t}");
    write_result("ablation_policies.txt", &t);
}
