//! `perf_guard` — CI throughput-regression guard for the work-stealing
//! pool and the control-plane server.
//!
//! Judges two smoke reports against their checked-in baselines:
//!
//! * `pool_bench --smoke` (`results/pool_bench_smoke.json` vs
//!   `results/pool_bench_smoke_baseline.json`) — the *stealing*-engine
//!   rows, compared on `jobs_per_sec`.
//! * `serverd_bench --smoke` (`results/serverd_bench_smoke.json` vs
//!   `results/serverd_bench_smoke_baseline.json`) — the *reactor*-engine
//!   rows, compared on `frames_per_sec`. The thread-per-connection rows
//!   are the experiment's baseline, not the protected engine, so they
//!   are ignored here just as the central-queue pool rows are.
//!
//! A section fails (exit 1) when its geometric-mean throughput ratio
//! drops below 0.75 (a >25% fleet-wide regression) or any single
//! matched config drops below 0.50 — the single-config gate is looser
//! because one smoke-sized row on a noisy shared runner can easily
//! halve without meaning anything, while a uniform 25% drop across the
//! matrix cannot.
//!
//! ```text
//! USAGE: perf_guard [--fresh PATH] [--baseline PATH]
//!                   [--serverd-fresh PATH] [--serverd-baseline PATH]
//!                   [--write-baseline]
//! ```
//!
//! `--write-baseline` promotes both fresh reports to new baselines
//! instead of judging them (used when a deliberate change moves the
//! floor).

use std::collections::BTreeMap;
use std::process::ExitCode;

use metrics::json::parse;
use metrics::JsonValue;

const GEOMEAN_FLOOR: f64 = 0.75;
const SINGLE_FLOOR: f64 = 0.50;

/// One guarded report pair: which engine's rows are protected and on
/// which throughput field.
struct Section {
    name: &'static str,
    fresh_path: String,
    baseline_path: String,
    engine: &'static str,
    rate_field: &'static str,
    regen_hint: &'static str,
}

/// `config label -> rate` for the section's protected-engine rows.
fn rates(doc: &JsonValue, engine: &str, rate_field: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(runs) = doc.get("runs").and_then(JsonValue::as_arr) else {
        return out;
    };
    for run in runs {
        if run.get("engine").and_then(JsonValue::as_str) != Some(engine) {
            continue;
        }
        let (Some(label), Some(rate)) = (
            run.get("config").and_then(JsonValue::as_str),
            run.get(rate_field).and_then(JsonValue::as_num),
        ) else {
            continue;
        };
        if rate > 0.0 {
            out.insert(label.to_string(), rate);
        }
    }
    out
}

fn load(path: &str, engine: &str, rate_field: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))?;
    let out = rates(&doc, engine, rate_field);
    if out.is_empty() {
        return Err(format!("{path} contains no {engine}-engine runs"));
    }
    Ok(out)
}

/// Judges one section; returns whether it passed.
fn judge(s: &Section) -> bool {
    let fresh = match load(&s.fresh_path, s.engine, s.rate_field) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_guard[{}]: {e} (run `{}` first)", s.name, s.regen_hint);
            return false;
        }
    };
    let baseline = match load(&s.baseline_path, s.engine, s.rate_field) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "perf_guard[{}]: {e} (regenerate with --write-baseline)",
                s.name
            );
            return false;
        }
    };

    let mut ratios: Vec<(String, f64, f64, f64)> = Vec::new();
    for (label, &base) in &baseline {
        if let Some(&now) = fresh.get(label) {
            ratios.push((label.clone(), base, now, now / base));
        }
    }
    if ratios.is_empty() {
        eprintln!(
            "perf_guard[{}]: no config labels shared between {} and {} — the suite shape \
             changed; regenerate the baseline with --write-baseline",
            s.name, s.fresh_path, s.baseline_path
        );
        return false;
    }

    let geomean =
        (ratios.iter().map(|(_, _, _, r)| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!(
        "perf_guard[{}]: {} matched {} configs, geomean {} ratio {:.3} (floor {GEOMEAN_FLOOR})",
        s.name,
        ratios.len(),
        s.engine,
        s.rate_field,
        geomean
    );
    let mut failed = false;
    for (label, base, now, ratio) in &ratios {
        let flag = if *ratio < SINGLE_FLOOR {
            failed = true;
            "  << REGRESSION"
        } else {
            ""
        };
        println!("  {label:<36} base {base:>12.0}  now {now:>12.0}  ratio {ratio:>5.2}{flag}");
    }
    if geomean < GEOMEAN_FLOOR {
        eprintln!(
            "perf_guard[{}]: FAIL — geomean {} ratio {geomean:.3} below {GEOMEAN_FLOOR} \
             (>25% fleet-wide regression on the {} engine)",
            s.name, s.rate_field, s.engine
        );
        failed = true;
    }
    !failed
}

/// Validates and promotes one fresh report to its baseline.
fn promote(s: &Section) -> bool {
    // Validate before promoting: a garbled report must not become the
    // floor every future run is judged against.
    if let Err(e) = load(&s.fresh_path, s.engine, s.rate_field) {
        eprintln!("perf_guard[{}]: refusing to promote baseline: {e}", s.name);
        return false;
    }
    let text = std::fs::read_to_string(&s.fresh_path).expect("just read it");
    if let Err(e) = std::fs::write(&s.baseline_path, text) {
        eprintln!(
            "perf_guard[{}]: cannot write {}: {e}",
            s.name, s.baseline_path
        );
        return false;
    }
    println!(
        "perf_guard[{}]: promoted {} -> {}",
        s.name, s.fresh_path, s.baseline_path
    );
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut pool = Section {
        name: "pool",
        fresh_path: "results/pool_bench_smoke.json".into(),
        baseline_path: "results/pool_bench_smoke_baseline.json".into(),
        engine: "stealing",
        rate_field: "jobs_per_sec",
        regen_hint: "pool_bench --smoke",
    };
    let mut serverd = Section {
        name: "serverd",
        fresh_path: "results/serverd_bench_smoke.json".into(),
        baseline_path: "results/serverd_bench_smoke_baseline.json".into(),
        engine: "reactor",
        rate_field: "frames_per_sec",
        regen_hint: "serverd_bench --smoke",
    };
    let mut write_baseline = false;
    let mut i = 1;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--fresh" => pool.fresh_path = take(&mut i),
            "--baseline" => pool.baseline_path = take(&mut i),
            "--serverd-fresh" => serverd.fresh_path = take(&mut i),
            "--serverd-baseline" => serverd.baseline_path = take(&mut i),
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    let sections = [pool, serverd];
    let ok = if write_baseline {
        sections.iter().all(promote)
    } else {
        // Judge every section even once one has failed: CI output with
        // both verdicts beats stopping at the first.
        let verdicts: Vec<bool> = sections.iter().map(judge).collect();
        verdicts.into_iter().all(|v| v)
    };
    if !ok {
        return ExitCode::FAILURE;
    }
    println!("perf_guard: OK — no throughput regression beyond thresholds");
    ExitCode::SUCCESS
}

fn usage() -> ! {
    eprintln!(
        "USAGE: perf_guard [--fresh PATH] [--baseline PATH] \
         [--serverd-fresh PATH] [--serverd-baseline PATH] [--write-baseline]"
    );
    std::process::exit(2);
}
