//! `perf_guard` — CI throughput-regression guard for the work-stealing
//! pool.
//!
//! Compares a fresh `pool_bench --smoke` report against the checked-in
//! baseline (`results/pool_bench_smoke_baseline.json`), matching the
//! *stealing*-engine rows by config label and comparing `jobs_per_sec`.
//! The run fails (exit 1) when the geometric-mean throughput ratio drops
//! below 0.75 (a >25% fleet-wide regression) or any single matched
//! config drops below 0.50 — the single-config gate is looser because
//! one smoke-sized row on a noisy shared runner can easily halve without
//! meaning anything, while a uniform 25% drop across the matrix cannot.
//!
//! ```text
//! USAGE: perf_guard [--fresh PATH] [--baseline PATH] [--write-baseline]
//! ```
//!
//! `--write-baseline` promotes the fresh report to the new baseline
//! instead of judging it (used when a deliberate change moves the
//! floor). Central-engine rows are ignored: the guard protects the
//! work-stealing engine, which is where the scheduling changes land.

use std::collections::BTreeMap;
use std::process::ExitCode;

use metrics::json::parse;
use metrics::JsonValue;

const GEOMEAN_FLOOR: f64 = 0.75;
const SINGLE_FLOOR: f64 = 0.50;

/// `config label -> jobs_per_sec` for the stealing-engine rows.
fn stealing_rates(doc: &JsonValue) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(runs) = doc.get("runs").and_then(JsonValue::as_arr) else {
        return out;
    };
    for run in runs {
        if run.get("engine").and_then(JsonValue::as_str) != Some("stealing") {
            continue;
        }
        let (Some(label), Some(rate)) = (
            run.get("config").and_then(JsonValue::as_str),
            run.get("jobs_per_sec").and_then(JsonValue::as_num),
        ) else {
            continue;
        };
        if rate > 0.0 {
            out.insert(label.to_string(), rate);
        }
    }
    out
}

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))?;
    let rates = stealing_rates(&doc);
    if rates.is_empty() {
        return Err(format!("{path} contains no stealing-engine runs"));
    }
    Ok(rates)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut fresh_path = "results/pool_bench_smoke.json".to_string();
    let mut baseline_path = "results/pool_bench_smoke_baseline.json".to_string();
    let mut write_baseline = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--fresh" => {
                i += 1;
                fresh_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--baseline" => {
                i += 1;
                baseline_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    if write_baseline {
        // Validate before promoting: a garbled report must not become
        // the floor every future run is judged against.
        if let Err(e) = load(&fresh_path) {
            eprintln!("perf_guard: refusing to promote baseline: {e}");
            return ExitCode::FAILURE;
        }
        let text = std::fs::read_to_string(&fresh_path).expect("just read it");
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("perf_guard: cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("perf_guard: promoted {fresh_path} -> {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let fresh = match load(&fresh_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_guard: {e} (run `pool_bench --smoke` first)");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match load(&baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_guard: {e} (regenerate with --write-baseline)");
            return ExitCode::FAILURE;
        }
    };

    let mut ratios: Vec<(String, f64, f64, f64)> = Vec::new();
    for (label, &base) in &baseline {
        if let Some(&now) = fresh.get(label) {
            ratios.push((label.clone(), base, now, now / base));
        }
    }
    if ratios.is_empty() {
        eprintln!(
            "perf_guard: no config labels shared between {fresh_path} and {baseline_path} — \
             the suite shape changed; regenerate the baseline with --write-baseline"
        );
        return ExitCode::FAILURE;
    }

    let geomean =
        (ratios.iter().map(|(_, _, _, r)| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!(
        "perf_guard: {} matched stealing configs, geomean ratio {:.3} (floor {GEOMEAN_FLOOR})",
        ratios.len(),
        geomean
    );
    let mut failed = false;
    for (label, base, now, ratio) in &ratios {
        let flag = if *ratio < SINGLE_FLOOR {
            "  << REGRESSION"
        } else {
            ""
        };
        if *ratio < SINGLE_FLOOR {
            failed = true;
        }
        println!("  {label:<36} base {base:>12.0}  now {now:>12.0}  ratio {ratio:>5.2}{flag}");
    }
    if geomean < GEOMEAN_FLOOR {
        eprintln!(
            "perf_guard: FAIL — geomean jobs/sec ratio {geomean:.3} below {GEOMEAN_FLOOR} \
             (>25% fleet-wide throughput regression on the work-stealing engine)"
        );
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!("perf_guard: OK — no throughput regression beyond thresholds");
    ExitCode::SUCCESS
}

fn usage() -> ! {
    eprintln!("USAGE: perf_guard [--fresh PATH] [--baseline PATH] [--write-baseline]");
    std::process::exit(2);
}
