//! Figure 3 — each application run alone, speed-up vs process count,
//! unmodified threads package (dashed in the paper) vs process control
//! (solid).
//!
//! The paper's result: the two curves coincide up to 16 processes
//! (control overhead is negligible), and beyond 16 the unmodified package
//! degrades while the controlled one stays flat — the gap grows with the
//! process count.

use bench::report::{
    emit_series, json_path, maybe_write_json, presets_from_args, quick_mode, write_result,
};
use bench::{fig3, SimEnv};
use desim::SimDur;
use metrics::{table, Series};

fn main() {
    let presets = presets_from_args();
    let env = SimEnv::default();
    let poll = SimDur::from_secs(6);
    let nprocs: Vec<u32> = if quick_mode() {
        vec![1, 8, 12]
    } else {
        vec![1, 2, 4, 8, 12, 16, 20, 24]
    };
    println!(
        "Figure 3: each application alone, {} CPUs, unmodified vs process control (6 s poll)",
        env.cpus
    );
    let results = fig3(&env, &presets, &nprocs, poll);

    let mut txt = String::new();
    for (kind, plain, ctl) in &results {
        let rows: Vec<Vec<String>> = nprocs
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                vec![
                    n.to_string(),
                    format!("{:.2}", plain.points[i].1),
                    format!("{:.2}", ctl.points[i].1),
                ]
            })
            .collect();
        let t = table(&["procs", "unmodified", "controlled"], &rows);
        println!("\n--- {} ---\n{}", kind.name(), t);
        txt.push_str(&format!("--- {} ---\n{}\n", kind.name(), t));
        emit_series(
            &format!("Figure 3: {}", kind.name()),
            &format!("fig3_{}.csv", kind.name()),
            &[plain.clone(), ctl.clone()],
        );
    }
    write_result("fig3.txt", &txt);
    let all: Vec<Series> = results
        .iter()
        .flat_map(|(_, p, c)| [p.clone(), c.clone()])
        .collect();
    maybe_write_json(&json_path(), &all);

    // A compact all-apps chart of the controlled curves.
    let ctl_series: Vec<Series> = results.iter().map(|(_, _, c)| c.clone()).collect();
    emit_series(
        "Figure 3 (controlled curves)",
        "fig3_controlled.csv",
        &ctl_series,
    );
}
