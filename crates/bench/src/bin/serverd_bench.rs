//! `serverd_bench` — control-plane frame throughput, reactor vs threads.
//!
//! Sweeps the live UDS server across engines, connection counts, and
//! frame mixes with a bounded open-loop pipelined generator (see
//! [`bench::serverdbench`]); prints an aligned table plus the
//! reactor-over-threads speedup on matched configurations, then writes
//! `results/serverd_bench.json`. With `--smoke` (or `--quick`) a
//! seconds-long subset runs — still including the 64-connection point
//! the ≥5x acceptance criterion reads — and the artifact gets a
//! `_smoke` suffix. `perf_guard` gates the reactor rows of the smoke
//! artifact against `results/serverd_bench_smoke_baseline.json`.
//!
//! A second, smaller sweep re-runs the poll mix with periodic state
//! snapshots enabled (the crash-recovery tax from DESIGN.md §14) and
//! writes it to the separate `results/serverd_bench_snapshot*.json`
//! artifact, so the main gate's baseline keeps comparing like with
//! like.

use bench::report::write_result;
use bench::serverdbench::{
    results_json, results_table, run_config, snapshot_suite, speedups, suite,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let cfgs = suite(smoke);
    println!(
        "serverd_bench: {} configurations ({} mode) on {} host cpus",
        cfgs.len(),
        if smoke { "smoke" } else { "full" },
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let mut results = Vec::with_capacity(cfgs.len());
    for (i, cfg) in cfgs.iter().enumerate() {
        let outcome = run_config(cfg);
        println!(
            "[{}/{}] {:<24} {:>10.0} frames/sec  p99 {:>7.1}µs",
            i + 1,
            cfgs.len(),
            cfg.label(),
            outcome.frames_per_sec,
            outcome.p99_reply_ns as f64 / 1_000.0,
        );
        results.push((*cfg, outcome));
    }

    println!("\n== serverd_bench results ==\n");
    print!("{}", results_table(&results));

    println!("\n== reactor over threads (matched configs) ==\n");
    for (label, s) in speedups(&results) {
        println!("  {label:<20} {s:>6.2}x");
    }

    let suffix = if smoke { "_smoke" } else { "" };
    write_result(
        &format!("serverd_bench{suffix}.json"),
        &results_json(&results).render_pretty(),
    );

    let snap_cfgs = snapshot_suite(smoke);
    println!(
        "\nsnapshot overhead sweep: {} configurations",
        snap_cfgs.len()
    );
    let mut snap_results = Vec::with_capacity(snap_cfgs.len());
    for (i, cfg) in snap_cfgs.iter().enumerate() {
        let outcome = run_config(cfg);
        println!(
            "[{}/{}] {:<24} {:>10.0} frames/sec  p99 {:>7.1}µs",
            i + 1,
            snap_cfgs.len(),
            cfg.label(),
            outcome.frames_per_sec,
            outcome.p99_reply_ns as f64 / 1_000.0,
        );
        snap_results.push((*cfg, outcome));
    }
    println!("\n== snapshot overhead results ==\n");
    print!("{}", results_table(&snap_results));
    write_result(
        &format!("serverd_bench_snapshot{suffix}.json"),
        &results_json(&snap_results).render_pretty(),
    );
}
