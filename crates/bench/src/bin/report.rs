//! `report` — full observability for the Figure-4 scenario.
//!
//! Runs fft/gauss/matmul staggered, once without and once with process
//! control, and emits the three artifacts of the cycle-accounting story:
//!
//! 1. an ASCII per-application cycle-breakdown table on stdout (where did
//!    every processor-cycle go? work, spin-wait, cache refill, context
//!    switch, idle — the categories provably sum to `cpus × elapsed`);
//! 2. Perfetto-loadable Chrome trace JSON for both runs
//!    (`results/report_trace_{uncontrolled,controlled}.json`) with per-CPU
//!    dispatch tracks, per-worker task/suspension spans, and the
//!    controller's partition sweeps;
//! 3. a machine-readable JSON report (`results/report.json`) with the
//!    ledgers, convergence latencies, and sweep decisions.
//!
//! The paper's mechanism is visible directly in the deltas: spin-wait and
//! cache-refill cycles drop when control is on.

use bench::report::{presets_from_args, quick_mode, write_result};
use bench::{
    cycle_table, fig4_launches, report_json, run_scenario_instrumented, scenario_trace,
    ScenarioRun, SimEnv, PAPER_STAGGER,
};
use desim::{SimDur, SimTime};
use metrics::JsonValue;

fn convergence_summary(run: &ScenarioRun) -> String {
    let mut out = String::new();
    for a in &run.apps {
        if a.convergence.is_empty() {
            out.push_str(&format!(
                "  {}: no target adjustments observed\n",
                a.kind.name()
            ));
            continue;
        }
        let mut max = SimDur(0);
        let mut total = 0.0;
        for &(_, lat) in &a.convergence {
            total += lat.as_secs_f64();
            if lat > max {
                max = lat;
            }
        }
        out.push_str(&format!(
            "  {}: {} adjustments, mean {:.3} s, max {:.3} s to converge\n",
            a.kind.name(),
            a.convergence.len(),
            total / a.convergence.len() as f64,
            max.as_secs_f64(),
        ));
    }
    out
}

fn main() {
    let presets = presets_from_args();
    let env = SimEnv {
        trace: true,
        ..SimEnv::default()
    };
    // Quick mode shrinks the workload, so the poll interval shrinks with
    // it — control must get a chance to act before the applications finish.
    let (nprocs, poll, stagger) = if quick_mode() {
        (8, SimDur::from_millis(250), SimDur::from_millis(500))
    } else {
        (16, SimDur::from_secs(6), PAPER_STAGGER)
    };
    let limit = SimTime(3_600 * 1_000_000_000);
    let launches = fig4_launches(nprocs, stagger);
    println!(
        "Cycle-accounting report: fft/gauss/matmul staggered {:.1} s, {} processes each, {} CPUs, {:.2} s poll",
        stagger.as_secs_f64(),
        nprocs,
        env.cpus,
        poll.as_secs_f64(),
    );

    let un = run_scenario_instrumented(&env, &presets, &launches, None, limit);
    let ctl = run_scenario_instrumented(&env, &presets, &launches, Some(poll), limit);

    let mut txt = String::new();
    for (title, run) in [
        ("without process control", &un),
        ("with process control", &ctl),
    ] {
        let t = format!("== {title} ==\n\n{}", cycle_table(run));
        println!("\n{t}");
        txt.push_str(&t);
        txt.push('\n');
    }

    let spin_saved = un.ledger.total.spin.as_secs_f64() - ctl.ledger.total.spin.as_secs_f64();
    let refill_saved = un.ledger.total.refill.as_secs_f64() - ctl.ledger.total.refill.as_secs_f64();
    let summary = format!(
        "process control eliminated {spin_saved:.2} s of spin-wait and {refill_saved:.2} s of cache-refill\n\
         controller ran {} partition sweeps; poll-to-convergence:\n{}",
        ctl.sweeps.len(),
        convergence_summary(&ctl),
    );
    println!("{summary}");
    txt.push_str(&summary);
    write_result("report.txt", &txt);

    let scenario = JsonValue::obj([
        ("cpus", JsonValue::uint(env.cpus as u64)),
        ("nprocs", JsonValue::uint(u64::from(nprocs))),
        ("stagger_s", JsonValue::num(stagger.as_secs_f64())),
        ("poll_s", JsonValue::num(poll.as_secs_f64())),
        ("quick", JsonValue::Bool(quick_mode())),
    ]);
    write_result(
        "report.json",
        &report_json(scenario, &un, &ctl).render_pretty(),
    );
    write_result(
        "report_trace_uncontrolled.json",
        &scenario_trace(&un).finish().render(),
    );
    write_result(
        "report_trace_controlled.json",
        &scenario_trace(&ctl).finish().render(),
    );
}
