//! Figure 1 — "Speed-up when a matrix multiplication application and an
//! FFT application are run simultaneously and the number of processes per
//! application is varied."
//!
//! Both applications start together on the 16-processor machine with no
//! process control; the per-application process count sweeps 1→24. The
//! paper's result: speed-ups climb until the combined process count
//! reaches the machine size (8 per application), then collapse — the more
//! processes, the worse (matmul 2.8×, fft 2.4× at 24).

use bench::report::{
    emit_series, json_path, maybe_write_json, presets_from_args, quick_mode, write_result,
};
use bench::{fig1, SimEnv};
use metrics::table;

fn main() {
    let presets = presets_from_args();
    let env = SimEnv::default();
    let nprocs: Vec<u32> = if quick_mode() {
        vec![1, 4, 8, 12]
    } else {
        vec![1, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24]
    };
    println!(
        "Figure 1: matmul + fft run simultaneously, {} CPUs, policy {}, no control",
        env.cpus,
        env.policy.name()
    );
    let series = fig1(&env, &presets, &nprocs);

    let rows: Vec<Vec<String>> = nprocs
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            vec![
                n.to_string(),
                format!("{:.2}", series[0].points[i].1),
                format!("{:.2}", series[1].points[i].1),
            ]
        })
        .collect();
    println!(
        "\n{}",
        table(&["procs/app", "matmul speedup", "fft speedup"], &rows)
    );
    emit_series("Figure 1", "fig1.csv", &series);
    maybe_write_json(&json_path(), &series);
    write_result(
        "fig1.txt",
        &table(&["procs/app", "matmul speedup", "fft speedup"], &rows),
    );
}
