//! Figure 5 — the number of runnable processes in the system as a
//! function of time, for the Figure-4 runs (top: with process control,
//! bottom: without).
//!
//! The paper's result: with control the total returns to 16 (the machine
//! size) within roughly one 6-second poll after each application starts,
//! the processors divide equally while applications coexist, and
//! suspended processes resume as applications finish. Without control the
//! total climbs to 48.

use bench::report::{
    emit_series, json_path, maybe_write_json, presets_from_args, quick_mode, write_result,
};
use bench::{fig5, fig5_with_stagger, SimEnv};
use desim::SimDur;
use metrics::{series_csv, table, Series};

fn main() {
    let presets = presets_from_args();
    let env = SimEnv::default();
    let (controlled, uncontrolled) = if quick_mode() {
        fig5_with_stagger(
            &env,
            &presets,
            8,
            SimDur::from_secs(2),
            SimDur::from_millis(500),
        )
    } else {
        fig5(&env, &presets, 16, SimDur::from_secs(6))
    };
    println!(
        "Figure 5: runnable processes over time for the Figure-4 scenario ({} CPUs)",
        env.cpus
    );
    emit_series("with process control", "fig5_controlled.csv", &controlled);
    emit_series(
        "without process control",
        "fig5_uncontrolled.csv",
        &uncontrolled,
    );

    // Numeric samples every 5 s for the record.
    let sample_table = |series: &[Series]| -> String {
        let x_max = series
            .iter()
            .flat_map(|s| s.points.last().map(|&(x, _)| x))
            .fold(0.0f64, f64::max);
        let mut rows = Vec::new();
        let mut x = 0.0;
        while x <= x_max {
            let mut row = vec![format!("{x:.0}")];
            for s in series {
                row.push(format!("{:.0}", s.step_at(x).unwrap_or(0.0)));
            }
            rows.push(row);
            x += 5.0;
        }
        let mut header = vec!["t(s)"];
        let labels: Vec<String> = series.iter().map(|s| s.label.clone()).collect();
        header.extend(labels.iter().map(String::as_str));
        table(&header, &rows)
    };
    let txt = format!(
        "WITH CONTROL\n{}\nWITHOUT CONTROL\n{}",
        sample_table(&controlled),
        sample_table(&uncontrolled)
    );
    println!("\n{txt}");
    write_result("fig5.txt", &txt);
    let all: Vec<Series> = controlled.iter().chain(&uncontrolled).cloned().collect();
    write_result("fig5_all.csv", &series_csv(&all));
    maybe_write_json(&json_path(), &all);
}
