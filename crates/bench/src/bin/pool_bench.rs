//! `pool_bench` — central-queue vs work-stealing pool throughput.
//!
//! Sweeps both native-runtime pool engines across submission styles,
//! job grains, worker counts, and process-control settings; prints an
//! aligned table, then writes `results/pool_bench.json` and a Perfetto
//! trace `results/pool_bench_trace.json`. With `--smoke` (or `--quick`)
//! a seconds-long subset runs and the artifacts get a `_smoke` suffix.
//! `--pin` pins the stealing engine's workers with `sched_setaffinity`
//! (artifacts get a `_pin` suffix); `--no-pin` is the explicit default.
//! `--no-trace` disables the stealing pool's flight recorder (artifacts
//! get a `_notrace` suffix) — the recorder-off arm of the overhead A/B
//! in EXPERIMENTS.md. `--trace-out <path>` additionally runs the
//! two-application fleet drill and writes the merged multi-process
//! Perfetto timeline (per-app tracks + decision instants) to `path`.

use bench::fleettrace::fleet_drill;
use bench::poolbench::{results_json, results_table, results_trace, run_config, speedups, suite};
use bench::report::write_result;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let pin = args.iter().any(|a| a == "--pin") && !args.iter().any(|a| a == "--no-pin");
    let trace = !args.iter().any(|a| a == "--no-trace");
    let trace_out = args.iter().position(|a| a == "--trace-out").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("pool_bench: --trace-out needs a path");
            std::process::exit(2);
        })
    });
    let mut cfgs = suite(smoke, pin);
    for cfg in &mut cfgs {
        cfg.trace = trace;
    }
    println!(
        "pool_bench: {} configurations ({} mode{}{}) on {} host cpus",
        cfgs.len(),
        if smoke { "smoke" } else { "full" },
        if pin { ", pinned" } else { "" },
        if trace { "" } else { ", recorder off" },
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let mut results = Vec::with_capacity(cfgs.len());
    for (i, cfg) in cfgs.iter().enumerate() {
        let outcome = run_config(cfg);
        println!(
            "[{}/{}] {:<32} {:>10.0} jobs/sec",
            i + 1,
            cfgs.len(),
            cfg.label(),
            outcome.jobs_per_sec
        );
        results.push((*cfg, outcome));
    }

    println!("\n== pool_bench results ==\n");
    print!("{}", results_table(&results));

    println!("\n== stealing over central (matched configs) ==\n");
    for (label, s) in speedups(&results) {
        println!("  {label:<28} {s:>6.2}x");
    }

    let suffix = format!(
        "{}{}{}",
        if smoke { "_smoke" } else { "" },
        if pin { "_pin" } else { "" },
        if trace { "" } else { "_notrace" }
    );
    write_result(
        &format!("pool_bench{suffix}.json"),
        &results_json(&results).render_pretty(),
    );
    write_result(
        &format!("pool_bench{suffix}_trace.json"),
        &results_trace(&results).render(),
    );

    if let Some(path) = trace_out {
        let jobs = if smoke { 256 } else { 2_000 };
        let doc = fleet_drill(jobs).finish().render();
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("pool_bench: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nfleet timeline (2-app drill): {path}");
    }
}
