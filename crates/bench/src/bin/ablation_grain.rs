//! Ablation F — grain-size sensitivity: "The problem is worst in
//! fine-grained systems, where critical sections are entered frequently
//! and are fairly large relative to the grain size" (Section 2).
//!
//! We hold total work constant (matmul, 24 processes on 16 CPUs,
//! uncontrolled vs controlled) and sweep the task grain; the threads
//! package's queue-lock operation (0.8 ms) is a fixed critical section per
//! task, so finer grain = larger critical-section fraction. The
//! uncontrolled run should degrade sharply as grain shrinks, while the
//! controlled run pays only the (preemption-free) lock contention.

use bench::report::{presets_from_args, quick_mode, write_result};
use bench::{run_solo, AppKind, SimEnv};
use desim::{SimDur, SimTime};
use metrics::table;
use workloads::{MatmulParams, Presets};

const LIMIT: SimTime = SimTime(3_600 * 1_000_000_000);

fn main() {
    let base = presets_from_args();
    let env = SimEnv::default();
    let total_work = f64::from(base.matmul.tasks) * base.matmul.task_cost.as_secs_f64();
    let (nprocs, grains_ms): (u32, Vec<u64>) = if quick_mode() {
        (8, vec![20, 80])
    } else {
        (24, vec![5, 10, 20, 40, 80, 160])
    };
    println!(
        "Ablation F: task-grain sweep, matmul ({total_work:.0}s total work), {nprocs} procs, 16 CPUs"
    );
    let mut rows = Vec::new();
    for ms in grains_ms {
        let tasks = (total_work / (ms as f64 / 1_000.0)).round() as u32;
        let presets = Presets {
            matmul: MatmulParams {
                tasks,
                task_cost: SimDur::from_millis(ms),
            },
            ..base
        };
        let plain = run_solo(&env, &presets, AppKind::Matmul, nprocs, None, LIMIT);
        let ctl = run_solo(
            &env,
            &presets,
            AppKind::Matmul,
            nprocs,
            Some(SimDur::from_secs(6)),
            LIMIT,
        );
        rows.push(vec![
            format!("{ms}"),
            tasks.to_string(),
            format!("{:.1}", plain.wall),
            format!("{:.1}", ctl.wall),
            format!("{:.2}x", plain.wall / ctl.wall),
            format!("{:.0}", plain.stats.spin.as_secs_f64()),
        ]);
    }
    let t = table(
        &[
            "grain(ms)",
            "tasks",
            "uncontrolled(s)",
            "controlled(s)",
            "control gain",
            "uncontrolled spin(s)",
        ],
        &rows,
    );
    println!("\n{t}");
    write_result("ablation_grain.txt", &t);
}
