//! Ablation D — centralized server vs the decentralized variant the paper
//! tried first and rejected (Section 4.2: "We experimented with the
//! decentralized approach and found it to be too inefficient for our
//! purposes. It also introduced stability problems...").
//!
//! Every application samples `rpstat` itself and estimates a fair share
//! with no registry of controllable applications. Two defects show up:
//! each application pays the rpstat cost separately, and a burst of
//! single-process (uncontrollable) load is mistaken for equal claimants,
//! shrinking everyone's target.

use bench::report::{presets_from_args, quick_mode, write_result};
use bench::{fig4_launches, AppLaunch, SimEnv, PAPER_STAGGER};
use desim::{SimDur, SimTime};
use metrics::table;
use simkernel::AppId;
use uthreads::{launch, ThreadsConfig};
use workloads::load::spawn_batch_load;
use workloads::Presets;

const LIMIT: SimTime = SimTime(3_600 * 1_000_000_000);

/// Runs the Figure-4 scenario with decentralized control and optional
/// uncontrollable batch load; returns per-app wall times.
fn run_decentralized(
    env: &SimEnv,
    presets: &Presets,
    launches: &[AppLaunch],
    poll: SimDur,
    batch_load: u32,
) -> Vec<f64> {
    let mut kernel = env.make_kernel();
    if batch_load > 0 {
        spawn_batch_load(
            &mut kernel,
            AppId(100),
            batch_load,
            SimDur::from_secs(40),
            512,
        );
    }
    let mut handles = Vec::new();
    for (i, l) in launches.iter().enumerate() {
        kernel.run_until(l.start);
        let cfg =
            ThreadsConfig::new(l.nprocs).with_decentralized_control(poll, SimDur::from_micros(500));
        let id = AppId(i as u32);
        handles.push((
            id,
            l.start,
            launch(&mut kernel, id, cfg, l.kind.spec(presets)),
        ));
    }
    let ids: Vec<AppId> = handles.iter().map(|(id, _, _)| *id).collect();
    assert!(
        kernel.run_until_apps_done(&ids, LIMIT),
        "decentralized run hung"
    );
    handles
        .iter()
        .map(|(id, start, _)| {
            kernel
                .app_done_time(*id)
                .expect("finished")
                .since(*start)
                .as_secs_f64()
        })
        .collect()
}

/// Same scenario, centralized control (and the same optional batch load).
fn run_centralized(
    env: &SimEnv,
    presets: &Presets,
    launches: &[AppLaunch],
    poll: SimDur,
    batch_load: u32,
) -> Vec<f64> {
    let mut kernel = env.make_kernel();
    let port = bench::spawn_server(&mut kernel);
    if batch_load > 0 {
        spawn_batch_load(
            &mut kernel,
            AppId(100),
            batch_load,
            SimDur::from_secs(40),
            512,
        );
    }
    let mut handles = Vec::new();
    for (i, l) in launches.iter().enumerate() {
        kernel.run_until(l.start);
        let cfg = ThreadsConfig::new(l.nprocs).with_control(port, poll);
        let id = AppId(i as u32);
        handles.push((
            id,
            l.start,
            launch(&mut kernel, id, cfg, l.kind.spec(presets)),
        ));
    }
    let ids: Vec<AppId> = handles.iter().map(|(id, _, _)| *id).collect();
    assert!(
        kernel.run_until_apps_done(&ids, LIMIT),
        "centralized run hung"
    );
    handles
        .iter()
        .map(|(id, start, _)| {
            kernel
                .app_done_time(*id)
                .expect("finished")
                .since(*start)
                .as_secs_f64()
        })
        .collect()
}

fn main() {
    let presets = presets_from_args();
    let env = SimEnv::default();
    let poll = SimDur::from_secs(6);
    let (nprocs, stagger) = if quick_mode() {
        (8u32, SimDur::from_millis(500))
    } else {
        (16u32, PAPER_STAGGER)
    };
    let launches = fig4_launches(nprocs, stagger);
    println!("Ablation D: centralized vs decentralized control, with/without 4 batch jobs");
    let mut trows = Vec::new();
    for batch in [0u32, 4] {
        let cen = run_centralized(&env, &presets, &launches, poll, batch);
        let dec = run_decentralized(&env, &presets, &launches, poll, batch);
        for (i, l) in launches.iter().enumerate() {
            trows.push(vec![
                l.kind.name().to_string(),
                batch.to_string(),
                format!("{:.1}", cen[i]),
                format!("{:.1}", dec[i]),
                format!("{:+.1}%", (dec[i] / cen[i] - 1.0) * 100.0),
            ]);
        }
    }
    let t = table(
        &[
            "app",
            "batch jobs",
            "centralized(s)",
            "decentralized(s)",
            "delta",
        ],
        &trows,
    );
    println!("\n{t}");
    write_result("ablation_decentralized.txt", &t);
}
