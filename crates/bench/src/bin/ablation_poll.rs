//! Ablation B — sensitivity to the poll interval.
//!
//! The paper polls the server every 6 seconds. Shorter intervals converge
//! faster (less time spent overcommitted after load changes) at the price
//! of more IPC; very long intervals leave applications running with stale
//! targets for most of their lifetime.

use bench::report::{presets_from_args, quick_mode, write_result};
use bench::{ablation_poll, SimEnv};
use metrics::table;

fn main() {
    let presets = presets_from_args();
    let env = SimEnv::default();
    let (nprocs, intervals): (u32, Vec<f64>) = if quick_mode() {
        (8, vec![1.0, 4.0])
    } else {
        (16, vec![0.5, 1.0, 2.0, 4.0, 6.0, 10.0, 20.0, 30.0])
    };
    println!("Ablation B: poll-interval sweep on the Figure-4 scenario");
    let rows = ablation_poll(&env, &presets, nprocs, &intervals);
    let trows: Vec<Vec<String>> = rows
        .iter()
        .map(|(secs, walls)| {
            let mut row = vec![format!("{secs}")];
            row.extend(walls.iter().map(|w| format!("{w:.1}")));
            row.push(format!("{:.1}", walls.iter().sum::<f64>()));
            row
        })
        .collect();
    let t = table(
        &["poll(s)", "fft(s)", "gauss(s)", "matmul(s)", "sum(s)"],
        &trows,
    );
    println!("\n{t}");
    write_result("ablation_poll.txt", &t);
}
