//! Ablation E — lock-level concurrency restriction vs server-level
//! process control, on the Figure-1 collapse scenario.
//!
//! The paper kills the multiprogrammed scalability collapse with a
//! *server*: suspend excess processes at safe points so preempted lock
//! holders stop being spun on. A concurrency-restricting (CR) queue lock
//! attacks the same collapse at the *lock*: admit a bounded active set to
//! the spinlock and park the rest, so a preemption inside the critical
//! section stalls a couple of spinners instead of every worker. This
//! binary crosses the two switches — {none, control, crlock, both} — over
//! the simultaneous matmul+FFT sweep and reports how much of the
//! no-control collapse each cell recovers.

use bench::report::{emit_series, json_path, maybe_write_json, presets_from_args, write_result};
use bench::{ablation_crlock, SimEnv, CR_VARIANTS};
use desim::SimDur;
use metrics::{table, Series};
use uthreads::CrParams;

fn find<'a>(series: &'a [Series], app: &str, cell: &str) -> &'a Series {
    let name = format!("{app} {cell}");
    series
        .iter()
        .find(|s| s.label == name)
        .unwrap_or_else(|| panic!("missing series {name}"))
}

fn main() {
    let presets = presets_from_args();
    let quick = bench::report::quick_mode();
    let env = SimEnv::default();
    // Quick mode shrinks the poll along with the workload so control
    // still engages within the (sub-second) run.
    let poll = if quick {
        SimDur::from_millis(200)
    } else {
        SimDur::from_secs(6)
    };
    // One admitted worker per processor: the strongest restriction a
    // per-application lock can justify without knowing how many other
    // applications share the machine — that cross-application knowledge
    // is precisely what the server brings in the `control`/`both` cells.
    let cr = CrParams::fixed(env.cpus as u32);
    let nprocs: Vec<u32> = if quick {
        vec![2, 8, 16, 24]
    } else {
        vec![1, 2, 4, 8, 12, 16, 20, 24]
    };
    println!(
        "Ablation E: CR queue lock (active set {}) vs server control, matmul+fft pair, {} CPUs",
        cr.active_max, env.cpus
    );
    let series = ablation_crlock(&env, &presets, &nprocs, poll, cr);
    emit_series(
        "speed-up vs processes per application (four-way ablation)",
        "ablation_crlock.csv",
        &series,
    );
    maybe_write_json(&json_path(), &series);

    // Per-app table: one row per swept process count, one column per cell.
    let mut trows = Vec::new();
    for app in ["matmul", "fft"] {
        for (i, &n) in nprocs.iter().enumerate() {
            let mut row = vec![app.to_string(), n.to_string()];
            for &(cell, _, _) in &CR_VARIANTS {
                row.push(format!("{:.2}", find(&series, app, cell).points[i].1));
            }
            trows.push(row);
        }
    }
    let t = table(
        &["app", "procs", "none", "control", "crlock", "both"],
        &trows,
    );
    println!("\n{t}");

    // Analysis at the overcommitted end of the sweep: how much of the
    // collapse (peak speed-up minus no-control speed-up at max procs)
    // each mechanism recovers.
    let mut analysis = String::new();
    let last = nprocs.len() - 1;
    for app in ["matmul", "fft"] {
        let peak = find(&series, app, "none")
            .points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::MIN, f64::max);
        let at = |cell: &str| find(&series, app, cell).points[last].1;
        let (none, control, crlock, both) = (at("none"), at("control"), at("crlock"), at("both"));
        let collapse = peak - none;
        let frac = |x: f64| {
            if collapse > 0.0 {
                ((x - none) / collapse * 100.0).max(0.0)
            } else {
                0.0
            }
        };
        analysis.push_str(&format!(
            "{app} @ {} procs: none {none:.2} (peak {peak:.2}) | control {control:.2} \
             (recovers {:.0}% of collapse) | crlock {crlock:.2} (recovers {:.0}%) | \
             both {both:.2} (recovers {:.0}%)\n",
            nprocs[last],
            frac(control),
            frac(crlock),
            frac(both),
        ));
    }
    println!("{analysis}");
    write_result("ablation_crlock.txt", &format!("{t}\n{analysis}"));
}
