//! Ablation C — cache-miss-penalty sensitivity.
//!
//! Section 2 predicts that "scalable multiprocessors" with 50–100-cycle
//! miss penalties will suffer far more from cache corruption, so process
//! control matters more there. We run the Figure-1 pair (matmul + fft,
//! 16 + 16 processes... at 24 each to overcommit) on the Multimax-like
//! machine and the scalable one, with and without control.

use bench::ablation_cache;
use bench::report::{presets_from_args, quick_mode, write_result};
use desim::SimDur;
use metrics::table;

fn main() {
    let presets = presets_from_args();
    let nprocs = if quick_mode() { 8 } else { 24 };
    println!("Ablation C: miss-penalty sensitivity (matmul+fft, {nprocs} procs each)");
    let rows = ablation_cache(&presets, nprocs, SimDur::from_secs(6));
    let trows: Vec<Vec<String>> = rows
        .iter()
        .map(|(machine, ctl, walls)| {
            let mut row = vec![
                (*machine).to_string(),
                if *ctl { "yes" } else { "no" }.to_string(),
            ];
            row.extend(walls.iter().map(|w| format!("{w:.1}")));
            row
        })
        .collect();
    let t = table(&["machine", "control", "matmul(s)", "fft(s)"], &trows);
    println!("\n{t}");
    // The headline ratio: how much more control buys on the scalable box.
    let gain = |m: &str| -> f64 {
        let un: f64 = rows
            .iter()
            .find(|(mm, c, _)| *mm == m && !c)
            .map(|(_, _, w)| w.iter().sum())
            .unwrap_or(0.0);
        let ct: f64 = rows
            .iter()
            .find(|(mm, c, _)| *mm == m && *c)
            .map(|(_, _, w)| w.iter().sum())
            .unwrap_or(1.0);
        un / ct
    };
    println!(
        "control gain: multimax {:.2}x, scalable {:.2}x",
        gain("multimax"),
        gain("scalable")
    );
    write_result("ablation_cache.txt", &t);
}
