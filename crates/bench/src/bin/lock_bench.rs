//! `lock_bench` — concurrency-restricting lock vs bare spinlock.
//!
//! Sweeps thread counts and critical-section grains over the bare
//! [`native_rt::RawSpin`], a fixed-size [`native_rt::CrLock`], and the
//! adaptive build; prints an aligned table plus CR-over-bare throughput
//! ratios, then writes `results/lock_bench.json`. With `--smoke` (or
//! `--quick`) a seconds-long subset runs and the artifact gets a
//! `_smoke` suffix.

use bench::lockbench::{results_json, results_table, run_config, speedups, suite};
use bench::report::write_result;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let cfgs = suite(smoke);
    println!(
        "lock_bench: {} configurations ({} mode) on {} host cpus",
        cfgs.len(),
        if smoke { "smoke" } else { "full" },
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let mut results = Vec::with_capacity(cfgs.len());
    for (i, cfg) in cfgs.iter().enumerate() {
        // Best of two: lock microbenchmarks on a shared CI box jitter
        // hard, and the faster run is the one with less interference.
        let outcome = [run_config(cfg), run_config(cfg)]
            .into_iter()
            .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
            .expect("two runs");
        println!(
            "[{}/{}] {:<24} {:>12.0} ops/sec",
            i + 1,
            cfgs.len(),
            cfg.label(),
            outcome.ops_per_sec
        );
        results.push((*cfg, outcome));
    }

    println!("\n== lock_bench results ==\n");
    print!("{}", results_table(&results));

    println!("\n== CR over bare (matched configs) ==\n");
    for (label, s) in speedups(&results) {
        println!("  {label:<24} {s:>6.2}x");
    }

    let suffix = if smoke { "_smoke" } else { "" };
    write_result(
        &format!("lock_bench{suffix}.json"),
        &results_json(&results).render_pretty(),
    );
}
