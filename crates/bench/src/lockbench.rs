//! The `lock_bench` harness: CR lock vs its bare inner spinlock.
//!
//! Hammers one shared counter from a sweep of thread counts and
//! critical-section grains, through three lock builds: the bare
//! [`native_rt::RawSpin`] (the baseline whose collapse concurrency
//! restriction prevents), [`native_rt::CrLock`] with a fixed active set
//! of one thread per host processor, and `CrLock` with the adaptive
//! sizer. The interesting regime is threads ≫ processors: every spinning
//! thread is a preemption hazard for the lock holder, so the bare lock's
//! throughput decays while the CR builds park the excess and stay flat.
//! At or below the active-set size the gate never culls and the two
//! builds should be indistinguishable — that overhead bound and the
//! oversubscribed win are what `results/lock_bench.json` records.

use std::cell::UnsafeCell;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use metrics::{table, JsonValue};
use native_rt::{AdaptiveConfig, CrConfig, CrLock, RawLock, RawSpin};

use crate::poolbench::burn;

/// Which lock build serves the threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// The bare test-and-test-and-set spinlock.
    Bare,
    /// [`CrLock`] with a fixed active set (one slot per host processor).
    Cr,
    /// [`CrLock`] with the adaptive sizer, starting from the same size.
    CrAdaptive,
}

impl LockKind {
    fn name(self) -> &'static str {
        match self {
            LockKind::Bare => "bare",
            LockKind::Cr => "cr",
            LockKind::CrAdaptive => "cr-adaptive",
        }
    }
}

/// How long the lock is held per operation, relative to the work done
/// outside it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Section {
    /// ~100 ns held: pure hand-off throughput.
    Short,
    /// ~2 µs held: long enough that a preempted holder strands real work.
    Long,
}

impl Section {
    fn name(self) -> &'static str {
        match self {
            Section::Short => "short",
            Section::Long => "long",
        }
    }

    /// (spins inside the critical section, spins outside it). The short
    /// section is ~1 µs — long enough that the gate's two extra atomic
    /// operations per acquisition are noise, short enough that hand-off
    /// latency still dominates beyond saturation.
    fn spins(self) -> (u64, u64) {
        match self {
            Section::Short => (300, 600),
            Section::Long => (6_000, 3_000),
        }
    }
}

/// One benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Lock build under test.
    pub kind: LockKind,
    /// Contending thread count.
    pub threads: usize,
    /// Critical-section grain.
    pub section: Section,
    /// Total lock acquisitions across all threads.
    pub ops: usize,
    /// Active-set size for the CR builds (ignored by `Bare`).
    pub active_max: usize,
}

impl Config {
    /// A short unique label, e.g. `cr/short/t32`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/t{}",
            self.kind.name(),
            self.section.name(),
            self.threads
        )
    }
}

/// Measured outcome of one configuration.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Lock acquisitions performed (equals `Config::ops`; asserted).
    pub ops: usize,
    /// Wall-clock from the start barrier to the last thread's exit.
    pub elapsed: Duration,
    /// Acquisitions per second over that window.
    pub ops_per_sec: f64,
    /// Gate passivations (0 for the bare build).
    pub cr_passivations: u64,
    /// Gate promotions (0 for the bare build).
    pub cr_promotions: u64,
    /// Final active-set size (None for the bare build).
    pub active_max_end: Option<usize>,
}

/// The inner spinlock on its own, protecting the same payload — the
/// baseline whose collapse the gate prevents.
struct Bare<T> {
    raw: RawSpin,
    data: UnsafeCell<T>,
}

// SAFETY: mutual exclusion — `with` brackets every access between
// `lock` and `unlock`, so at most one `&mut T` exists at a time.
unsafe impl<T: Send> Sync for Bare<T> {}

impl<T> Bare<T> {
    fn new(data: T) -> Self {
        Bare {
            raw: RawSpin::default(),
            data: UnsafeCell::new(data),
        }
    }

    fn with(&self, f: impl FnOnce(&mut T)) {
        self.raw.lock();
        // SAFETY: the raw lock is held for the whole closure call.
        f(unsafe { &mut *self.data.get() });
        self.raw.unlock();
    }
}

enum AnyLock {
    Bare(Arc<Bare<u64>>),
    Cr(Arc<CrLock<u64>>),
}

impl AnyLock {
    fn clone_handle(&self) -> AnyLock {
        match self {
            AnyLock::Bare(l) => AnyLock::Bare(Arc::clone(l)),
            AnyLock::Cr(l) => AnyLock::Cr(Arc::clone(l)),
        }
    }

    fn bump(&self, hold_spins: u64) {
        match self {
            AnyLock::Bare(l) => l.with(|v| {
                burn(hold_spins);
                *v += 1;
            }),
            AnyLock::Cr(l) => {
                let mut g = l.lock();
                burn(hold_spins);
                *g += 1;
            }
        }
    }

    fn value(&self) -> u64 {
        match self {
            AnyLock::Bare(l) => {
                let mut v = 0;
                l.with(|d| v = *d);
                v
            }
            AnyLock::Cr(l) => *l.lock(),
        }
    }
}

/// Runs one configuration and measures it.
pub fn run_config(cfg: &Config) -> Outcome {
    let lock = match cfg.kind {
        LockKind::Bare => AnyLock::Bare(Arc::new(Bare::new(0))),
        LockKind::Cr => AnyLock::Cr(Arc::new(CrLock::new(CrConfig::fixed(cfg.active_max), 0))),
        LockKind::CrAdaptive => AnyLock::Cr(Arc::new(CrLock::new(
            CrConfig::fixed(cfg.active_max).with_adaptive(AdaptiveConfig::default()),
            0,
        ))),
    };
    let (hold, outside) = cfg.section.spins();
    let per_thread = cfg.ops / cfg.threads;
    let ops = per_thread * cfg.threads;
    let gate = Arc::new(Barrier::new(cfg.threads + 1));
    let threads: Vec<_> = (0..cfg.threads)
        .map(|_| {
            let lock = lock.clone_handle();
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                for _ in 0..per_thread {
                    lock.bump(hold);
                    burn(outside);
                }
            })
        })
        .collect();
    gate.wait();
    let start = Instant::now();
    for t in threads {
        t.join().expect("bench thread panicked");
    }
    let elapsed = start.elapsed();
    assert_eq!(lock.value(), ops as u64, "acquisitions lost");

    let (cr_passivations, cr_promotions, active_max_end) = match &lock {
        AnyLock::Bare(_) => (0, 0, None),
        AnyLock::Cr(l) => {
            let (p, pr) = l.gate().counters();
            (p, pr, Some(l.gate().active_max()))
        }
    };
    Outcome {
        ops,
        elapsed,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64().max(1e-9),
        cr_passivations,
        cr_promotions,
        active_max_end,
    }
}

/// The benchmark matrix. `smoke` shrinks it to a CI-friendly subset.
/// The CR builds' active set is one slot per host processor, capped at
/// the thread count — below the cap the gate should be invisible.
pub fn suite(smoke: bool) -> Vec<Config> {
    let cpus = std::thread::available_parallelism().map_or(4, |n| n.get());
    let (threads, ops_scale): (Vec<usize>, usize) = if smoke {
        (vec![1, 2, cpus, 4 * cpus], 1)
    } else {
        (vec![1, 2, cpus / 2, cpus, 2 * cpus, 4 * cpus, 8 * cpus], 8)
    };
    let mut seen = Vec::new();
    for t in threads {
        if t >= 1 && !seen.contains(&t) {
            seen.push(t);
        }
    }
    let threads = seen;
    let mut cfgs = Vec::new();
    for &kind in &[LockKind::Bare, LockKind::Cr, LockKind::CrAdaptive] {
        for &section in &[Section::Short, Section::Long] {
            for &t in &threads {
                let base = match section {
                    Section::Short => 40_000,
                    Section::Long => 5_000,
                };
                cfgs.push(Config {
                    kind,
                    threads: t,
                    section,
                    ops: base * ops_scale,
                    active_max: cpus.min(t.max(1)),
                });
            }
        }
    }
    cfgs
}

/// CR-over-bare throughput ratio for every matched (section, threads)
/// pair, as `(label, ratio)`.
pub fn speedups(results: &[(Config, Outcome)]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (cfg, o) in results {
        if cfg.kind == LockKind::Bare {
            continue;
        }
        let twin = results.iter().find(|(c, _)| {
            c.kind == LockKind::Bare
                && c.section == cfg.section
                && c.threads == cfg.threads
                && c.ops == cfg.ops
        });
        if let Some((_, bare)) = twin {
            out.push((cfg.label(), o.ops_per_sec / bare.ops_per_sec.max(1e-9)));
        }
    }
    out
}

/// Renders the results as an aligned stdout table.
pub fn results_table(results: &[(Config, Outcome)]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(cfg, o)| {
            vec![
                cfg.label(),
                o.ops.to_string(),
                format!("{:.0}", o.ops_per_sec),
                o.cr_passivations.to_string(),
                o.cr_promotions.to_string(),
                o.active_max_end
                    .map_or_else(|| "-".to_string(), |m| m.to_string()),
            ]
        })
        .collect();
    table(
        &["config", "ops", "ops/sec", "culls", "promos", "set"],
        &rows,
    )
}

/// The machine-readable report (`results/lock_bench.json`).
pub fn results_json(results: &[(Config, Outcome)]) -> JsonValue {
    let runs: Vec<JsonValue> = results
        .iter()
        .map(|(cfg, o)| {
            JsonValue::obj([
                ("config", JsonValue::str(cfg.label())),
                ("kind", JsonValue::str(cfg.kind.name())),
                ("section", JsonValue::str(cfg.section.name())),
                ("threads", JsonValue::uint(cfg.threads as u64)),
                ("active_max", JsonValue::uint(cfg.active_max as u64)),
                ("ops", JsonValue::uint(o.ops as u64)),
                ("elapsed_us", JsonValue::uint(o.elapsed.as_micros() as u64)),
                ("ops_per_sec", JsonValue::num(o.ops_per_sec)),
                ("cr_passivations", JsonValue::uint(o.cr_passivations)),
                ("cr_promotions", JsonValue::uint(o.cr_promotions)),
                (
                    "active_max_end",
                    o.active_max_end
                        .map_or(JsonValue::Null, |m| JsonValue::uint(m as u64)),
                ),
            ])
        })
        .collect();
    let ratio_objs: Vec<JsonValue> = speedups(results)
        .into_iter()
        .map(|(label, s)| {
            JsonValue::obj([
                ("config", JsonValue::str(label)),
                ("cr_over_bare", JsonValue::num(s)),
            ])
        })
        .collect();
    JsonValue::obj([
        ("benchmark", JsonValue::str("lock_bench")),
        ("runs", JsonValue::Arr(runs)),
        ("speedups", JsonValue::Arr(ratio_objs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_build_counts_exactly() {
        for kind in [LockKind::Bare, LockKind::Cr, LockKind::CrAdaptive] {
            let cfg = Config {
                kind,
                threads: 4,
                section: Section::Short,
                ops: 400,
                active_max: 2,
            };
            let o = run_config(&cfg);
            assert_eq!(o.ops, 400);
            if kind == LockKind::Bare {
                assert_eq!(o.cr_passivations, 0);
                assert!(o.active_max_end.is_none());
            }
        }
    }

    #[test]
    fn smoke_suite_is_small_and_full_is_larger() {
        let smoke = suite(true);
        let full = suite(false);
        assert!(!smoke.is_empty());
        assert!(smoke.len() < full.len());
    }

    #[test]
    fn json_report_round_trips() {
        let cfgs: Vec<Config> = [LockKind::Bare, LockKind::Cr]
            .iter()
            .map(|&kind| Config {
                kind,
                threads: 2,
                section: Section::Short,
                ops: 200,
                active_max: 2,
            })
            .collect();
        let results: Vec<_> = cfgs.iter().map(|c| (*c, run_config(c))).collect();
        let j = results_json(&results);
        assert_eq!(j.get("runs").and_then(JsonValue::as_arr).unwrap().len(), 2);
        assert_eq!(
            j.get("speedups").and_then(JsonValue::as_arr).unwrap().len(),
            1
        );
        metrics::json::parse(&j.render_pretty()).expect("valid json");
    }
}
