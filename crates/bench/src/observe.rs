//! Report assembly for instrumented runs: the cycle-breakdown table, the
//! combined Perfetto timeline (kernel dispatches + threads-package spans +
//! controller sweeps), and the machine-readable JSON report.
//!
//! Everything here consumes a [`ScenarioRun`] from
//! [`crate::run_scenario_instrumented`]; the `report` binary wires the
//! pieces together for the Figure-4 scenario.

use desim::SimTime;
use metrics::{table, JsonValue, TraceBuilder};
use procctl::SweepRecord;
use simkernel::{AppId, Cycles};
use uthreads::SpanKind;

use crate::scenario::{ScenarioRun, SERVER_APP};

/// Trace-process id for the controller's tracks (the machine uses
/// [`metrics::perfetto::MACHINE_PID`], applications use
/// [`app_trace_pid`]).
pub const CONTROLLER_PID: u64 = 2;

/// Trace-process id for an application's span tracks.
pub fn app_trace_pid(app: AppId) -> u64 {
    100 + u64::from(app.0)
}

fn us(t: SimTime) -> f64 {
    t.since(SimTime::ZERO).nanos() as f64 / 1_000.0
}

fn secs(d: desim::SimDur) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// The display name for an application id in a run: the launch's kind for
/// scenario apps, `server` for the control daemon.
pub fn app_label(run: &ScenarioRun, app: AppId) -> String {
    if app == SERVER_APP {
        return "server".to_string();
    }
    run.apps
        .iter()
        .find(|a| a.app == app)
        .map_or_else(|| format!("app {}", app.0), |a| a.kind.name().to_string())
}

/// Renders the per-application cycle breakdown as an ASCII table, followed
/// by the idle line and the conservation check. Every processor-cycle of
/// the run appears in exactly one cell of the `work`/`spin`/`refill`/
/// `switch` columns or in the idle line; the final line shows both sides
/// of the invariant.
pub fn cycle_table(run: &ScenarioRun) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (app, c) in run.ledger.apps() {
        rows.push(vec![
            app_label(run, app),
            secs(c.work),
            secs(c.spin),
            secs(c.refill),
            secs(c.switch),
            secs(c.busy()),
            secs(c.suspended),
        ]);
    }
    let t = run.ledger.total;
    rows.push(vec![
        "total".to_string(),
        secs(t.work),
        secs(t.spin),
        secs(t.refill),
        secs(t.switch),
        secs(t.busy()),
        secs(t.suspended),
    ]);
    let mut out = table(
        &[
            "app",
            "work(s)",
            "spin(s)",
            "refill(s)",
            "switch(s)",
            "busy(s)",
            "susp(s)",
        ],
        &rows,
    );
    out.push_str(&format!(
        "idle: {} s\naccounted {} s == {} cpus x {} s elapsed: {}\n",
        secs(run.ledger.idle),
        secs(run.ledger.accounted()),
        run.ledger.num_cpus,
        secs(run.ledger.elapsed),
        if run.ledger.conserved() {
            "conserved"
        } else {
            "NOT CONSERVED"
        },
    ));
    out
}

/// Converts one run into a full Perfetto timeline: the kernel's per-CPU
/// dispatch tracks, one trace-process per application with a track per
/// worker (task slices, suspension slices, queue-lock-wait slices, poll
/// instants, target counters), and the controller's sweep instants.
pub fn scenario_trace(run: &ScenarioRun) -> TraceBuilder {
    let mut b = metrics::perfetto::kernel_trace(run.kernel.trace(), run.ledger.num_cpus, run.end);
    for a in &run.apps {
        let pid = app_trace_pid(a.app);
        b.process_name(pid, &format!("app {} ({})", a.app.0, a.kind.name()));
        let mut named: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        // Open slice per worker: (name, start).
        let mut open: std::collections::BTreeMap<u32, (&'static str, SimTime)> =
            std::collections::BTreeMap::new();
        for r in &a.spans {
            let tid = u64::from(r.pid.0);
            if named.insert(r.pid.0) {
                b.thread_name(pid, tid, &format!("P{}", r.pid.0));
            }
            let close = |b: &mut TraceBuilder,
                         open: &mut std::collections::BTreeMap<u32, (&'static str, SimTime)>,
                         now: SimTime,
                         args: JsonValue| {
                if let Some((name, start)) = open.remove(&r.pid.0) {
                    b.complete(name, "span", pid, tid, us(start), us(now) - us(start), args);
                }
            };
            match r.kind {
                SpanKind::TaskStart => {
                    close(&mut b, &mut open, r.time, JsonValue::Null);
                    open.insert(r.pid.0, ("task", r.time));
                }
                SpanKind::TaskEnd { finished } => {
                    close(
                        &mut b,
                        &mut open,
                        r.time,
                        JsonValue::obj([("finished", JsonValue::Bool(finished))]),
                    );
                }
                SpanKind::SuspendEnter => {
                    close(&mut b, &mut open, r.time, JsonValue::Null);
                    open.insert(r.pid.0, ("suspended", r.time));
                }
                SpanKind::SuspendExit => {
                    close(&mut b, &mut open, r.time, JsonValue::Null);
                }
                SpanKind::QueueLockWait { waited } => {
                    let w = waited.nanos() as f64 / 1_000.0;
                    if w > 0.0 {
                        b.complete(
                            "queue-lock wait",
                            "lock",
                            pid,
                            tid,
                            us(r.time) - w,
                            w,
                            JsonValue::Null,
                        );
                    }
                }
                SpanKind::PollSent => {
                    b.instant("poll", "control", pid, tid, us(r.time), JsonValue::Null);
                }
                SpanKind::TargetApplied { target } => {
                    b.counter(
                        &format!("target app {}", a.app.0),
                        pid,
                        us(r.time),
                        "target",
                        f64::from(target),
                    );
                }
                SpanKind::CrCull => {
                    b.instant("cr-cull", "crlock", pid, tid, us(r.time), JsonValue::Null);
                }
                SpanKind::CrPromote => {
                    b.instant(
                        "cr-promote",
                        "crlock",
                        pid,
                        tid,
                        us(r.time),
                        JsonValue::Null,
                    );
                }
            }
        }
        // Anything still open when the run ended (e.g. a worker suspended
        // at the finish line) closes at the end timestamp.
        let still_open: Vec<u32> = open.keys().copied().collect();
        for p in still_open {
            if let Some((name, start)) = open.remove(&p) {
                b.complete(
                    name,
                    "span",
                    pid,
                    u64::from(p),
                    us(start),
                    us(run.end) - us(start),
                    JsonValue::Null,
                );
            }
        }
    }
    if !run.sweeps.is_empty() {
        b.process_name(CONTROLLER_PID, "controller");
        b.thread_name(CONTROLLER_PID, 0, "partition sweeps");
        for s in &run.sweeps {
            let targets: Vec<JsonValue> = s
                .apps
                .iter()
                .map(|a| {
                    JsonValue::obj([
                        ("root", JsonValue::uint(u64::from(a.root.0))),
                        ("runnable", JsonValue::uint(u64::from(a.runnable))),
                        ("target", JsonValue::uint(u64::from(a.target))),
                    ])
                })
                .collect();
            b.instant(
                "partition sweep",
                "control",
                CONTROLLER_PID,
                0,
                us(s.time),
                JsonValue::obj([
                    ("pool", JsonValue::uint(u64::from(s.pool))),
                    (
                        "uncontrolled_runnable",
                        JsonValue::uint(u64::from(s.uncontrolled_runnable)),
                    ),
                    ("apps", JsonValue::Arr(targets)),
                ]),
            );
            b.counter(
                "uncontrolled runnable",
                CONTROLLER_PID,
                us(s.time),
                "runnable",
                f64::from(s.uncontrolled_runnable),
            );
        }
    }
    b
}

fn cycles_json(c: &Cycles) -> JsonValue {
    JsonValue::obj([
        ("work_s", JsonValue::num(c.work.as_secs_f64())),
        ("spin_s", JsonValue::num(c.spin.as_secs_f64())),
        ("refill_s", JsonValue::num(c.refill.as_secs_f64())),
        ("switch_s", JsonValue::num(c.switch.as_secs_f64())),
        ("busy_s", JsonValue::num(c.busy().as_secs_f64())),
        ("suspended_s", JsonValue::num(c.suspended.as_secs_f64())),
    ])
}

fn sweeps_json(sweeps: &[SweepRecord]) -> JsonValue {
    JsonValue::Arr(
        sweeps
            .iter()
            .map(|s| {
                JsonValue::obj([
                    ("time_s", JsonValue::num(s.time.as_secs_f64())),
                    ("pool", JsonValue::uint(u64::from(s.pool))),
                    (
                        "uncontrolled_runnable",
                        JsonValue::uint(u64::from(s.uncontrolled_runnable)),
                    ),
                    (
                        "apps",
                        JsonValue::Arr(
                            s.apps
                                .iter()
                                .map(|a| {
                                    JsonValue::obj([
                                        ("root", JsonValue::uint(u64::from(a.root.0))),
                                        ("processes", JsonValue::uint(u64::from(a.processes))),
                                        ("runnable", JsonValue::uint(u64::from(a.runnable))),
                                        ("weight", JsonValue::num(a.weight)),
                                        ("prev_target", JsonValue::uint(u64::from(a.prev_target))),
                                        ("target", JsonValue::uint(u64::from(a.target))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// One run's worth of the JSON report.
pub fn run_json(run: &ScenarioRun) -> JsonValue {
    let apps: Vec<JsonValue> = run
        .apps
        .iter()
        .map(|a| {
            let ledger_cycles = run.ledger.per_app.get(&a.app).copied().unwrap_or_default();
            JsonValue::obj([
                ("app", JsonValue::uint(u64::from(a.app.0))),
                ("kind", JsonValue::str(a.kind.name())),
                ("start_s", JsonValue::num(a.start.as_secs_f64())),
                ("wall_s", JsonValue::num(a.wall)),
                ("cycles", cycles_json(&ledger_cycles)),
                ("spans", JsonValue::uint(a.spans.len() as u64)),
                (
                    "convergence",
                    JsonValue::Arr(
                        a.convergence
                            .iter()
                            .map(|&(at, lat)| {
                                JsonValue::obj([
                                    ("at_s", JsonValue::num(at.as_secs_f64())),
                                    ("latency_s", JsonValue::num(lat.as_secs_f64())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    JsonValue::obj([
        (
            "elapsed_s",
            JsonValue::num(run.ledger.elapsed.as_secs_f64()),
        ),
        ("idle_s", JsonValue::num(run.ledger.idle.as_secs_f64())),
        ("conserved", JsonValue::Bool(run.ledger.conserved())),
        ("total", cycles_json(&run.ledger.total)),
        ("apps", JsonValue::Arr(apps)),
        ("sweeps", sweeps_json(&run.sweeps)),
    ])
}

/// The full machine-readable report: scenario parameters, the two runs,
/// and the headline deltas (how much spin-wait and cache-refill process
/// control eliminated).
pub fn report_json(
    scenario: JsonValue,
    uncontrolled: &ScenarioRun,
    controlled: &ScenarioRun,
) -> JsonValue {
    let spin_delta =
        uncontrolled.ledger.total.spin.as_secs_f64() - controlled.ledger.total.spin.as_secs_f64();
    let refill_delta = uncontrolled.ledger.total.refill.as_secs_f64()
        - controlled.ledger.total.refill.as_secs_f64();
    JsonValue::obj([
        ("scenario", scenario),
        ("uncontrolled", run_json(uncontrolled)),
        ("controlled", run_json(controlled)),
        (
            "deltas",
            JsonValue::obj([
                ("spin_saved_s", JsonValue::num(spin_delta)),
                ("refill_saved_s", JsonValue::num(refill_delta)),
            ]),
        ),
    ])
}
