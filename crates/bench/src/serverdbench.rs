//! The `serverd_bench` harness: control-plane throughput, measured.
//!
//! Drives a live [`native_rt::UdsServer`] with a fleet of concurrent
//! connections, each a registered fake application firing pipelined
//! windows of wire frames (`POLL`, or a POLL/REPORT mix) as fast as the
//! server absorbs them — a bounded open-loop generator: every
//! connection keeps `window` frames in flight, writes each window with
//! one syscall, and clocks every reply against its window's send
//! instant, so reply latency includes the server-side queueing the
//! window creates. Sweeps engine × connection count × frame mix and
//! reports frames/sec plus p50/p99 reply latency per configuration,
//! then the reactor-over-threads speedup on matched configurations —
//! the number the ISSUE's ≥5x acceptance criterion and the
//! `perf_guard` control-plane gate read. The binary writes
//! `results/serverd_bench.json` (`_smoke` suffix with `--smoke`).
//!
//! The server config under test disables `/proc` liveness pruning and
//! stretches the lease TTL: the fleet's pids are fabricated, and the
//! point is to measure the frame path, not the reaper.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use metrics::{table, JsonValue};
use native_rt::{ServerEngine, Snapshot, UdsServer, UdsServerConfig};

/// First fabricated application pid; connection `i` registers as
/// `FAKE_PID_BASE + i` so every connection is a distinct application.
const FAKE_PID_BASE: u32 = 900_000;

/// Frames kept in flight per connection (written one window per
/// syscall). Deep enough that the server, not the generator, is the
/// bottleneck: each connection keeps a full window queued, so the
/// engines face identical offered load and the measurement exposes
/// how each absorbs a backlog — the reactor batches replies per
/// wakeup, the thread engine pays a syscall per reply.
pub const WINDOW: usize = 512;

/// What the fleet sends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// 100% `POLL` — the steady-state heartbeat traffic.
    Poll,
    /// 3 `POLL` : 1 `REPORT` — heartbeats plus throughput feedback, the
    /// worst case for partition recomputation (every REPORT under a
    /// weighted policy dirties it).
    Mixed,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Poll => "poll",
            Mix::Mixed => "mixed",
        }
    }

    /// The `k`-th frame a connection with fabricated pid `pid` sends.
    fn frame(self, pid: u32, k: usize) -> String {
        match self {
            Mix::Poll => format!("POLL {pid}\n"),
            Mix::Mixed if k % 4 == 3 => format!("REPORT {pid} jobs_run={k}\n"),
            Mix::Mixed => format!("POLL {pid}\n"),
        }
    }
}

/// One benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Which server core answers the fleet.
    pub engine: ServerEngine,
    /// Concurrent connections (one fake application each).
    pub connections: usize,
    /// Frame mix each connection sends.
    pub mix: Mix,
    /// Frames each connection sends over the run.
    pub frames_per_conn: usize,
    /// Run the server with periodic state snapshots enabled (the
    /// crash-recovery tax; measured in its own sweep, gated separately).
    pub snapshot: bool,
}

impl Config {
    /// A short unique label, e.g. `reactor/poll/c64` (`+snap` when
    /// snapshotting is on).
    pub fn label(&self) -> String {
        format!(
            "{}/{}/c{}{}",
            self.engine.name(),
            self.mix.name(),
            self.connections,
            if self.snapshot { "+snap" } else { "" }
        )
    }
}

/// Measured outcome of one configuration.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Frames served (connections × frames_per_conn; every reply read).
    pub frames: usize,
    /// Wall-clock from the post-registration barrier to the last reply.
    pub elapsed: Duration,
    /// Frames per second over that window.
    pub frames_per_sec: f64,
    /// Median reply latency, nanoseconds.
    pub p50_reply_ns: u64,
    /// 99th-percentile reply latency, nanoseconds.
    pub p99_reply_ns: u64,
    /// Server stats snapshot at the end of the run.
    pub stats: Snapshot,
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "procctl-serverd-bench-{}-{tag}.sock",
        std::process::id()
    ))
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One connection's run: register, wait on the barrier, then fire
/// `frames` frames in pipelined windows, clocking every reply. Returns
/// the reply latencies.
///
/// The generator is deliberately thin so the measurement stays a
/// property of the *server*: each window's bytes are built once up
/// front (one `write(2)` per window), and replies are counted by
/// scanning raw reads for newlines — no per-line String parsing on the
/// hot path. The first reply of the run is validated; frame/reply
/// conservation is asserted by the window accounting itself.
fn run_conn(
    path: &PathBuf,
    pid: u32,
    mix: Mix,
    frames: usize,
    barrier: &Barrier,
) -> std::io::Result<Vec<u64>> {
    let mut stream = UnixStream::connect(path)?;
    let mut rbuf = vec![0u8; 64 * 1024];
    stream.write_all(format!("REGISTER {pid} 4\n").as_bytes())?;
    let n = stream.read(&mut rbuf)?;
    assert!(
        rbuf[..n].starts_with(b"OK"),
        "register failed: {:?}",
        String::from_utf8_lossy(&rbuf[..n])
    );
    let window_batch: Vec<u8> = (0..WINDOW)
        .flat_map(|k| mix.frame(pid, k).into_bytes())
        .collect();

    barrier.wait();
    let mut latencies = Vec::with_capacity(frames);
    let mut checked = false;
    let mut sent = 0usize;
    while sent < frames {
        let window = WINDOW.min(frames - sent);
        let fired = Instant::now();
        if window == WINDOW {
            stream.write_all(&window_batch)?;
        } else {
            let tail: Vec<u8> = (0..window)
                .flat_map(|k| mix.frame(pid, k).into_bytes())
                .collect();
            stream.write_all(&tail)?;
        }
        let mut got = 0usize;
        while got < window {
            let n = stream.read(&mut rbuf)?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            if !checked {
                assert!(
                    rbuf.starts_with(b"TARGET") || rbuf.starts_with(b"OK"),
                    "unexpected reply: {:?}",
                    String::from_utf8_lossy(&rbuf[..n])
                );
                checked = true;
            }
            let replies = rbuf[..n].iter().filter(|&&b| b == b'\n').count();
            let at = fired.elapsed().as_nanos() as u64;
            latencies.extend(std::iter::repeat(at).take(replies));
            got += replies;
        }
        assert_eq!(got, window, "reply overrun: window {window}, got {got}");
        sent += window;
    }
    Ok(latencies)
}

/// Repetitions per configuration; [`run_config`] reports the median
/// run by frames/sec. On small hosts a single run is at the mercy of
/// scheduler placement — the thread-per-connection engine in
/// particular swings several-fold between convoyed and lucky-burst
/// runs — and the median (applied identically to both engines) is
/// what the `perf_guard` gate can hold steady against.
pub const REPS: usize = 3;

/// Runs one configuration [`REPS`] times against fresh servers and
/// returns the median outcome by frames/sec.
pub fn run_config(cfg: &Config) -> Outcome {
    let mut runs: Vec<Outcome> = (0..REPS).map(|_| run_config_once(cfg)).collect();
    runs.sort_by(|a, b| a.frames_per_sec.total_cmp(&b.frames_per_sec));
    runs.swap_remove(runs.len() / 2)
}

fn run_config_once(cfg: &Config) -> Outcome {
    let path = sock_path(&cfg.label().replace('/', "-"));
    let _ = std::fs::remove_file(&path);
    let mut server_cfg = UdsServerConfig::new(&path, 8);
    server_cfg.engine = cfg.engine;
    server_cfg.prune_dead = false; // the fleet's pids are fabricated
    server_cfg.lease_ttl = Duration::from_secs(600);
    let snap_path = path.with_extension("snap");
    if cfg.snapshot {
        let _ = std::fs::remove_file(&snap_path);
        server_cfg.snapshot_path = Some(snap_path.clone());
        server_cfg.snapshot_interval = Duration::from_millis(100);
    }
    let server = UdsServer::start(server_cfg).expect("serverd under test");

    // All connections register first, then start firing together.
    let barrier = Arc::new(Barrier::new(cfg.connections + 1));
    let mut clients = Vec::with_capacity(cfg.connections);
    for i in 0..cfg.connections {
        let path = path.clone();
        let barrier = Arc::clone(&barrier);
        let (mix, frames) = (cfg.mix, cfg.frames_per_conn);
        let pid = FAKE_PID_BASE + i as u32;
        clients.push(
            std::thread::Builder::new()
                .name(format!("serverd-bench-{i}"))
                .spawn(move || run_conn(&path, pid, mix, frames, &barrier))
                .expect("spawn bench client"),
        );
    }
    barrier.wait();
    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.connections * cfg.frames_per_conn);
    for c in clients {
        latencies.extend(c.join().expect("bench client").expect("bench connection"));
    }
    let elapsed = start.elapsed();
    let stats = server.stats();
    drop(server);
    let _ = std::fs::remove_file(&path);
    if cfg.snapshot {
        let _ = std::fs::remove_file(&snap_path);
    }

    assert_eq!(latencies.len(), cfg.connections * cfg.frames_per_conn);
    latencies.sort_unstable();
    Outcome {
        frames: latencies.len(),
        elapsed,
        frames_per_sec: latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_reply_ns: quantile(&latencies, 0.50),
        p99_reply_ns: quantile(&latencies, 0.99),
        stats,
    }
}

/// The benchmark matrix. `smoke` is the CI subset — it still includes
/// the 64-connection point, where the ≥5x reactor-over-threads
/// acceptance criterion is read.
pub fn suite(smoke: bool) -> Vec<Config> {
    let (conns, mixes, frames_per_conn): (&[usize], &[Mix], usize) = if smoke {
        (&[8, 64], &[Mix::Poll], 6_000)
    } else {
        (&[1, 8, 64, 128], &[Mix::Poll, Mix::Mixed], 4_000)
    };
    let mut cfgs = Vec::new();
    for &engine in &[ServerEngine::Threads, ServerEngine::Reactor] {
        for &mix in mixes {
            for &connections in conns {
                cfgs.push(Config {
                    engine,
                    connections,
                    mix,
                    frames_per_conn,
                    snapshot: false,
                });
            }
        }
    }
    cfgs
}

/// The snapshot-overhead matrix: the same pipelined fleet, but the
/// server persists its state every 100 ms. Written to a *separate*
/// artifact (`serverd_bench_snapshot*.json`) so the main `perf_guard`
/// gate keeps comparing like with like.
pub fn snapshot_suite(smoke: bool) -> Vec<Config> {
    let conns: &[usize] = if smoke { &[8] } else { &[8, 64] };
    let frames_per_conn = if smoke { 6_000 } else { 4_000 };
    let mut cfgs = Vec::new();
    for &engine in &[ServerEngine::Threads, ServerEngine::Reactor] {
        for &connections in conns {
            cfgs.push(Config {
                engine,
                connections,
                mix: Mix::Poll,
                frames_per_conn,
                snapshot: true,
            });
        }
    }
    cfgs
}

/// Reactor-over-threads frames/sec speedup for every matched
/// (mix, connections) pair, as `(label, speedup)`.
pub fn speedups(results: &[(Config, Outcome)]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (cfg, outcome) in results {
        if cfg.engine != ServerEngine::Reactor {
            continue;
        }
        let twin = results.iter().find(|(c, _)| {
            c.engine == ServerEngine::Threads
                && c.mix == cfg.mix
                && c.connections == cfg.connections
                && c.frames_per_conn == cfg.frames_per_conn
                && c.snapshot == cfg.snapshot
        });
        if let Some((_, threads)) = twin {
            let label = format!("{}/c{}", cfg.mix.name(), cfg.connections);
            out.push((
                label,
                outcome.frames_per_sec / threads.frames_per_sec.max(1e-9),
            ));
        }
    }
    out
}

/// Renders the results as an aligned stdout table.
pub fn results_table(results: &[(Config, Outcome)]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(cfg, o)| {
            vec![
                cfg.label(),
                o.frames.to_string(),
                format!("{:.0}", o.frames_per_sec),
                format!("{:.1}", o.p50_reply_ns as f64 / 1_000.0),
                format!("{:.1}", o.p99_reply_ns as f64 / 1_000.0),
                o.stats
                    .counters
                    .get("reactor_wakeups")
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                o.stats
                    .counters
                    .get("frames_batched")
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                o.stats
                    .counters
                    .get("recompute_coalesced")
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
            ]
        })
        .collect();
    table(
        &[
            "config",
            "frames",
            "frames/sec",
            "p50 µs",
            "p99 µs",
            "wakeups",
            "batched",
            "coalesced",
        ],
        &rows,
    )
}

/// The machine-readable report (`results/serverd_bench.json`).
pub fn results_json(results: &[(Config, Outcome)]) -> JsonValue {
    let runs: Vec<JsonValue> = results
        .iter()
        .map(|(cfg, o)| {
            JsonValue::obj([
                ("config", JsonValue::str(cfg.label())),
                ("engine", JsonValue::str(cfg.engine.name())),
                ("mix", JsonValue::str(cfg.mix.name())),
                ("connections", JsonValue::uint(cfg.connections as u64)),
                ("window", JsonValue::uint(WINDOW as u64)),
                ("frames", JsonValue::uint(o.frames as u64)),
                ("elapsed_us", JsonValue::uint(o.elapsed.as_micros() as u64)),
                ("frames_per_sec", JsonValue::num(o.frames_per_sec)),
                ("p50_reply_ns", JsonValue::uint(o.p50_reply_ns)),
                ("p99_reply_ns", JsonValue::uint(o.p99_reply_ns)),
                (
                    "reactor_wakeups",
                    JsonValue::uint(
                        o.stats
                            .counters
                            .get("reactor_wakeups")
                            .copied()
                            .unwrap_or(0),
                    ),
                ),
                (
                    "frames_batched",
                    JsonValue::uint(o.stats.counters.get("frames_batched").copied().unwrap_or(0)),
                ),
                (
                    "recompute_coalesced",
                    JsonValue::uint(
                        o.stats
                            .counters
                            .get("recompute_coalesced")
                            .copied()
                            .unwrap_or(0),
                    ),
                ),
            ])
        })
        .collect();
    let speedup_objs: Vec<JsonValue> = speedups(results)
        .into_iter()
        .map(|(label, s)| {
            JsonValue::obj([
                ("config", JsonValue::str(label)),
                ("reactor_over_threads", JsonValue::num(s)),
            ])
        })
        .collect();
    JsonValue::obj([
        ("benchmark", JsonValue::str("serverd_bench")),
        ("runs", JsonValue::Arr(runs)),
        ("speedups", JsonValue::Arr(speedup_objs)),
    ])
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn both_engines_serve_a_tiny_fleet_exactly() {
        for engine in [ServerEngine::Threads, ServerEngine::Reactor] {
            for mix in [Mix::Poll, Mix::Mixed] {
                let cfg = Config {
                    engine,
                    connections: 3,
                    mix,
                    frames_per_conn: 90,
                    snapshot: false,
                };
                let o = run_config(&cfg);
                assert_eq!(o.frames, 270);
                assert!(o.frames_per_sec > 0.0);
                assert!(o.p99_reply_ns >= o.p50_reply_ns);
            }
        }
    }

    #[test]
    fn snapshot_runs_serve_exactly_and_label_with_snap_suffix() {
        for c in snapshot_suite(true) {
            assert!(c.snapshot && c.label().ends_with("+snap"), "{}", c.label());
        }
        let cfg = Config {
            engine: ServerEngine::Reactor,
            connections: 3,
            mix: Mix::Poll,
            frames_per_conn: 90,
            snapshot: true,
        };
        let o = run_config(&cfg);
        assert_eq!(o.frames, 270);
        assert!(o.frames_per_sec > 0.0);
    }

    #[test]
    fn smoke_suite_covers_both_engines_at_64_connections() {
        let smoke = suite(true);
        for engine in [ServerEngine::Threads, ServerEngine::Reactor] {
            assert!(
                smoke
                    .iter()
                    .any(|c| c.engine == engine && c.connections == 64),
                "the ≥5x criterion is read at 64 connections"
            );
        }
        assert!(smoke.len() < suite(false).len());
    }

    #[test]
    fn json_report_round_trips_and_pairs_speedups() {
        let cfgs = [
            Config {
                engine: ServerEngine::Threads,
                connections: 2,
                mix: Mix::Poll,
                frames_per_conn: 40,
                snapshot: false,
            },
            Config {
                engine: ServerEngine::Reactor,
                connections: 2,
                mix: Mix::Poll,
                frames_per_conn: 40,
                snapshot: false,
            },
        ];
        let results: Vec<_> = cfgs.iter().map(|c| (*c, run_config(c))).collect();
        let j = results_json(&results);
        assert_eq!(j.get("runs").and_then(JsonValue::as_arr).unwrap().len(), 2);
        assert_eq!(
            j.get("speedups").and_then(JsonValue::as_arr).unwrap().len(),
            1
        );
        metrics::json::parse(&j.render_pretty()).expect("valid json");
    }
}
