//! The `pool_bench` harness: central queue vs work stealing, measured.
//!
//! Runs the same job mix through [`native_rt::CentralPool`] (one mutex,
//! one condvar — the design PR 2 replaced) and [`native_rt::Pool`]
//! (per-worker Chase–Lev deques + sharded injector), across worker
//! counts, job grain sizes, and submission styles, with and without the
//! process controller shrinking the pool mid-run. For each configuration
//! it reports throughput (jobs/sec), p99 queue wait, and the scheduler's
//! own acquisition counters (`local_hits` / `injector_pops` / `steals`),
//! then summarizes stealing-over-central speedups on matched
//! configurations. The binary writes `results/pool_bench.json` plus a
//! Perfetto trace of the run; `--smoke` selects a seconds-long subset for
//! CI.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use metrics::json::counts_to_json;
use metrics::{table, JsonValue, TraceBuilder};
use native_rt::{CentralPool, Controller, Pool, PoolConfig, Snapshot};

/// Which queue discipline serves the workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The baseline `Mutex<VecDeque>` + global condvar pool.
    Central,
    /// The work-stealing pool (local deques, sharded injector).
    Stealing,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Central => "central",
            Engine::Stealing => "stealing",
        }
    }
}

/// How jobs reach the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Style {
    /// All jobs submitted from one external (non-worker) thread.
    External,
    /// Root jobs fan out: each job spawns two children to a fixed depth,
    /// from inside the workers — the local-deque fast path's home turf.
    ForkJoin,
}

impl Style {
    fn name(self) -> &'static str {
        match self {
            Style::External => "external",
            Style::ForkJoin => "forkjoin",
        }
    }
}

/// Per-job work amount (spin iterations — no syscalls, no allocation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Grain {
    /// ~empty job: pure scheduling overhead.
    Tiny,
    /// ~1µs of spinning.
    Small,
    /// ~20µs of spinning.
    Medium,
}

impl Grain {
    fn name(self) -> &'static str {
        match self {
            Grain::Tiny => "tiny",
            Grain::Small => "small",
            Grain::Medium => "medium",
        }
    }

    fn spins(self) -> u64 {
        match self {
            Grain::Tiny => 0,
            Grain::Small => 300,
            Grain::Medium => 6_000,
        }
    }
}

/// One benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Queue discipline.
    pub engine: Engine,
    /// Submission style.
    pub style: Style,
    /// Job grain.
    pub grain: Grain,
    /// Worker-thread count.
    pub workers: usize,
    /// Whether the controller halves the pool's CPU share mid-run.
    pub controlled: bool,
    /// Pin workers with `sched_setaffinity(2)` (stealing engine only —
    /// the central pool has no affinity support and ignores it).
    pub pin: bool,
    /// Flight recorder on (the default). `false` sets the stealing
    /// pool's `trace_capacity` to 0 — the recorder-off arm of the
    /// overhead A/B in EXPERIMENTS.md. The central pool has no recorder
    /// either way.
    pub trace: bool,
    /// Total jobs to run.
    pub jobs: usize,
}

impl Config {
    /// A short unique label, e.g. `stealing/forkjoin/tiny/w8/ctl/pin`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/w{}{}{}",
            self.engine.name(),
            self.style.name(),
            self.grain.name(),
            self.workers,
            if self.controlled { "/ctl" } else { "" },
            if self.pin { "/pin" } else { "" }
        )
    }
}

/// Measured outcome of one configuration.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Jobs completed (always equals `Config::jobs`; asserted).
    pub jobs: usize,
    /// Wall-clock for the submit-to-idle window.
    pub elapsed: Duration,
    /// Throughput over that window.
    pub jobs_per_sec: f64,
    /// 99th-percentile queue wait, nanoseconds (0 if unrecorded).
    pub p99_queue_wait_ns: u64,
    /// Full stats-registry snapshot at the end of the run.
    pub stats: Snapshot,
}

/// Either pool behind one submission interface.
#[derive(Clone)]
enum AnyPool {
    Central(Arc<CentralPool>),
    Stealing(Arc<Pool>),
}

impl AnyPool {
    fn execute(&self, job: impl FnOnce() + Send + 'static) {
        match self {
            AnyPool::Central(p) => p.execute(job),
            AnyPool::Stealing(p) => p.execute(job),
        }
    }

    fn wait_idle(&self) {
        match self {
            AnyPool::Central(p) => p.wait_idle(),
            AnyPool::Stealing(p) => p.wait_idle(),
        }
    }

    fn stats(&self) -> Snapshot {
        match self {
            AnyPool::Central(p) => p.stats(),
            AnyPool::Stealing(p) => p.stats(),
        }
    }
}

/// Burns roughly `spins` iterations of untraceable arithmetic.
#[inline]
pub(crate) fn burn(spins: u64) {
    let mut acc = 0u64;
    for i in 0..spins {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        std::hint::black_box(acc);
    }
}

fn spawn_tree(pool: AnyPool, depth: usize, spins: u64, done: Arc<AtomicUsize>) {
    let p = pool.clone();
    pool.execute(move || {
        burn(spins);
        done.fetch_add(1, Ordering::Relaxed);
        if depth > 0 {
            for _ in 0..2 {
                spawn_tree(p.clone(), depth - 1, spins, Arc::clone(&done));
            }
        }
    });
}

/// Jobs in a binary fan-out of `depth` levels below one root.
fn tree_jobs(depth: usize) -> usize {
    (1usize << (depth + 1)) - 1
}

/// Runs one configuration and measures it.
pub fn run_config(cfg: &Config) -> Outcome {
    // Uncontrolled: the controller's target covers every worker, so no
    // suspensions happen. Controlled: half the workers (at least one)
    // get suspended at safe points mid-run.
    let cpus = if cfg.controlled {
        (cfg.workers / 2).max(1)
    } else {
        cfg.workers
    };
    let controller = Controller::new(cpus, Duration::from_millis(5));
    let pool = match cfg.engine {
        Engine::Central => {
            AnyPool::Central(Arc::new(CentralPool::new(&controller, cfg.workers, false)))
        }
        Engine::Stealing => {
            let mut pc = PoolConfig::new(cfg.workers);
            pc.pin = cfg.pin;
            if !cfg.trace {
                pc.trace_capacity = 0;
            }
            AnyPool::Stealing(Arc::new(Pool::with_config(&controller, pc)))
        }
    };

    let done = Arc::new(AtomicUsize::new(0));
    let spins = cfg.grain.spins();
    // Closed-loop submission: keep at most `window` jobs outstanding.
    // An unbounded burst would make queue wait measure backlog depth
    // (which grows with the *submitter's* speed — faster injectors look
    // worse), not scheduling latency; a bounded window keeps the
    // workers saturated while queue wait stays a property of the pool.
    let window = match cfg.grain {
        // Coarse jobs: a deep window would dominate the queue-wait tail
        // (64 × ~20µs of backlog swamps any scheduler latency).
        Grain::Medium => (4 * cfg.workers).max(16),
        _ => (8 * cfg.workers).max(64),
    };
    let throttle = |submitted: usize| {
        while submitted - done.load(Ordering::Relaxed) >= window {
            std::thread::yield_now();
        }
    };
    let start = Instant::now();
    let submitted = match cfg.style {
        Style::External => {
            for i in 0..cfg.jobs {
                throttle(i);
                let d = Arc::clone(&done);
                pool.execute(move || {
                    burn(spins);
                    d.fetch_add(1, Ordering::Relaxed);
                });
            }
            cfg.jobs
        }
        Style::ForkJoin => {
            // Many moderate trees rather than one giant one: pick the
            // deepest tree of ≲2^8 jobs that fits the budget, submit as
            // many roots as fit (windowed), top up the remainder with
            // single jobs. LIFO local execution keeps each tree's
            // frontier small, so outstanding work stays bounded too.
            let mut depth = 0usize;
            while depth < 7 && tree_jobs(depth + 1) <= cfg.jobs {
                depth += 1;
            }
            let per_tree = tree_jobs(depth);
            let mut submitted = 0usize;
            while submitted + per_tree <= cfg.jobs {
                throttle(submitted);
                spawn_tree(pool.clone(), depth, spins, Arc::clone(&done));
                submitted += per_tree;
            }
            while submitted < cfg.jobs {
                throttle(submitted);
                let d = Arc::clone(&done);
                pool.execute(move || {
                    burn(spins);
                    d.fetch_add(1, Ordering::Relaxed);
                });
                submitted += 1;
            }
            submitted
        }
    };
    pool.wait_idle();
    let elapsed = start.elapsed();

    assert_eq!(done.load(Ordering::Relaxed), submitted, "jobs lost");
    let stats = pool.stats();
    assert_eq!(
        stats.counters["jobs_run"], submitted as u64,
        "jobs_run mismatch"
    );
    let p99 = stats
        .histograms
        .get("queue_wait_ns")
        .and_then(|h| h.quantile(0.99))
        .unwrap_or(0);
    Outcome {
        jobs: submitted,
        elapsed,
        jobs_per_sec: submitted as f64 / elapsed.as_secs_f64().max(1e-9),
        p99_queue_wait_ns: p99,
        stats,
    }
}

/// The benchmark matrix. `smoke` shrinks it to a CI-friendly subset;
/// `pin` turns on worker pinning for the stealing rows (the central pool
/// has no affinity support, so its rows are always unpinned). The
/// flight recorder is on everywhere — flip [`Config::trace`] off
/// per-config for the overhead A/B.
pub fn suite(smoke: bool, pin: bool) -> Vec<Config> {
    let (workers, grains, jobs_scale): (&[usize], &[Grain], usize) = if smoke {
        (&[1, 4], &[Grain::Tiny, Grain::Small], 1)
    } else {
        (
            &[1, 2, 4, 8, 16],
            &[Grain::Tiny, Grain::Small, Grain::Medium],
            8,
        )
    };
    let mut cfgs = Vec::new();
    for &engine in &[Engine::Central, Engine::Stealing] {
        for &style in &[Style::External, Style::ForkJoin] {
            for &grain in grains {
                for &w in workers {
                    for &controlled in &[false, true] {
                        // Controlled runs need someone to suspend.
                        if controlled && w < 2 {
                            continue;
                        }
                        let base = match grain {
                            Grain::Tiny => 4_000,
                            Grain::Small => 2_000,
                            Grain::Medium => 500,
                        };
                        cfgs.push(Config {
                            engine,
                            style,
                            grain,
                            workers: w,
                            controlled,
                            pin: pin && engine == Engine::Stealing,
                            trace: true,
                            jobs: base * jobs_scale,
                        });
                    }
                }
            }
        }
    }
    cfgs
}

/// Stealing-over-central speedup for every matched (style, grain,
/// workers, controlled) pair, as `(label, speedup)`.
pub fn speedups(results: &[(Config, Outcome)]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (cfg, outcome) in results {
        if cfg.engine != Engine::Stealing {
            continue;
        }
        let twin = results.iter().find(|(c, _)| {
            c.engine == Engine::Central
                && c.style == cfg.style
                && c.grain == cfg.grain
                && c.workers == cfg.workers
                && c.controlled == cfg.controlled
                && c.jobs == cfg.jobs
        });
        if let Some((_, central)) = twin {
            let label = format!(
                "{}/{}/w{}{}{}",
                cfg.style.name(),
                cfg.grain.name(),
                cfg.workers,
                if cfg.controlled { "/ctl" } else { "" },
                if cfg.pin { "/pin" } else { "" }
            );
            out.push((label, outcome.jobs_per_sec / central.jobs_per_sec.max(1e-9)));
        }
    }
    out
}

/// Renders the results as an aligned stdout table.
pub fn results_table(results: &[(Config, Outcome)]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(cfg, o)| {
            vec![
                cfg.label(),
                o.jobs.to_string(),
                format!("{:.0}", o.jobs_per_sec),
                format!("{:.1}", o.p99_queue_wait_ns as f64 / 1_000.0),
                o.stats
                    .counters
                    .get("local_hits")
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                o.stats
                    .counters
                    .get("injector_pops")
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                o.stats
                    .counters
                    .get("steals")
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                o.stats
                    .counters
                    .get("suspends")
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                steal_tiers_cell(&o.stats),
            ]
        })
        .collect();
    table(
        &[
            "config",
            "jobs",
            "jobs/sec",
            "p99 wait µs",
            "local",
            "inject",
            "steal",
            "susp",
            "tiers smt/llc/sock/rem",
        ],
        &rows,
    )
}

/// The per-tier steal counters as one compact `a/b/c/d` cell (central
/// rows, which never steal by tier, render as `-`).
fn steal_tiers_cell(stats: &Snapshot) -> String {
    if !stats.counters.contains_key("steal_tier_smt") {
        return "-".to_string();
    }
    native_rt::STEAL_TIER_NAMES
        .iter()
        .map(|t| {
            stats
                .counters
                .get(&format!("steal_tier_{t}"))
                .copied()
                .unwrap_or(0)
                .to_string()
        })
        .collect::<Vec<_>>()
        .join("/")
}

/// The machine-readable report (`results/pool_bench.json`).
pub fn results_json(results: &[(Config, Outcome)]) -> JsonValue {
    let runs: Vec<JsonValue> = results
        .iter()
        .map(|(cfg, o)| {
            JsonValue::obj([
                ("config", JsonValue::str(cfg.label())),
                ("engine", JsonValue::str(cfg.engine.name())),
                ("style", JsonValue::str(cfg.style.name())),
                ("grain", JsonValue::str(cfg.grain.name())),
                ("workers", JsonValue::uint(cfg.workers as u64)),
                ("controlled", JsonValue::Bool(cfg.controlled)),
                ("pin", JsonValue::Bool(cfg.pin)),
                ("jobs", JsonValue::uint(o.jobs as u64)),
                ("elapsed_us", JsonValue::uint(o.elapsed.as_micros() as u64)),
                ("jobs_per_sec", JsonValue::num(o.jobs_per_sec)),
                ("p99_queue_wait_ns", JsonValue::uint(o.p99_queue_wait_ns)),
                (
                    "counters",
                    counts_to_json(o.stats.counters.iter().map(|(k, &v)| (k.as_str(), v))),
                ),
            ])
        })
        .collect();
    let speedup_objs: Vec<JsonValue> = speedups(results)
        .into_iter()
        .map(|(label, s)| {
            JsonValue::obj([
                ("config", JsonValue::str(label)),
                ("stealing_over_central", JsonValue::num(s)),
            ])
        })
        .collect();
    JsonValue::obj([
        ("benchmark", JsonValue::str("pool_bench")),
        ("runs", JsonValue::Arr(runs)),
        ("speedups", JsonValue::Arr(speedup_objs)),
    ])
}

/// A Perfetto trace of the whole sweep: one slice per configuration
/// (duration = measured wall-clock) on a track per engine, plus a
/// throughput counter series.
pub fn results_trace(results: &[(Config, Outcome)]) -> JsonValue {
    let mut tb = TraceBuilder::new();
    tb.process_name(1, "pool_bench");
    tb.thread_name(1, 1, "central");
    tb.thread_name(1, 2, "stealing");
    let mut cursor_us = [0.0f64; 2];
    for (cfg, o) in results {
        let tid = match cfg.engine {
            Engine::Central => 1u64,
            Engine::Stealing => 2u64,
        };
        let lane = (tid - 1) as usize;
        let dur = o.elapsed.as_micros() as f64;
        tb.complete(
            &cfg.label(),
            "pool_bench",
            1,
            tid,
            cursor_us[lane],
            dur,
            JsonValue::obj([
                ("jobs", JsonValue::uint(o.jobs as u64)),
                ("jobs_per_sec", JsonValue::num(o.jobs_per_sec)),
                ("p99_queue_wait_ns", JsonValue::uint(o.p99_queue_wait_ns)),
                ("steal_tiers", JsonValue::str(steal_tiers_cell(&o.stats))),
            ]),
        );
        tb.counter(
            "jobs_per_sec",
            1,
            cursor_us[lane],
            cfg.engine.name(),
            o.jobs_per_sec,
        );
        cursor_us[lane] += dur;
    }
    tb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_run_a_tiny_config_exactly() {
        for engine in [Engine::Central, Engine::Stealing] {
            let cfg = Config {
                engine,
                style: Style::ForkJoin,
                grain: Grain::Tiny,
                workers: 2,
                controlled: false,
                pin: false,
                trace: true,
                jobs: 127,
            };
            let o = run_config(&cfg);
            assert_eq!(o.jobs, 127);
            assert_eq!(o.stats.counters["jobs_run"], 127);
        }
    }

    #[test]
    fn smoke_suite_is_small_and_full_is_larger() {
        let smoke = suite(true, false);
        let full = suite(false, false);
        assert!(!smoke.is_empty());
        assert!(smoke.len() < full.len());
        assert!(smoke.iter().all(|c| c.workers <= 4 && c.jobs <= 4_000));
    }

    #[test]
    fn json_report_contains_runs_and_speedups() {
        let cfgs = [
            Config {
                engine: Engine::Central,
                style: Style::External,
                grain: Grain::Tiny,
                workers: 2,
                controlled: false,
                pin: false,
                trace: true,
                jobs: 64,
            },
            Config {
                engine: Engine::Stealing,
                style: Style::External,
                grain: Grain::Tiny,
                workers: 2,
                controlled: false,
                pin: true,
                trace: true,
                jobs: 64,
            },
        ];
        let results: Vec<_> = cfgs.iter().map(|c| (*c, run_config(c))).collect();
        let j = results_json(&results);
        assert_eq!(j.get("runs").and_then(JsonValue::as_arr).unwrap().len(), 2);
        assert_eq!(
            j.get("speedups").and_then(JsonValue::as_arr).unwrap().len(),
            1
        );
        // The report must round-trip through the strict parser.
        metrics::json::parse(&j.render_pretty()).expect("valid json");
        metrics::json::parse(&results_trace(&results).render()).expect("valid trace json");
    }
}
