//! `bench` — figure-reproduction harnesses and criterion benchmarks.
//!
//! One binary per figure of the paper (`fig1`, `fig3`, `fig4`, `fig5`) and
//! per ablation (`ablation_policies`, `ablation_poll`, `ablation_cache`,
//! `ablation_decentralized`), each printing the table/series the paper
//! plots; see DESIGN.md §4 for the index and EXPERIMENTS.md for recorded
//! results. The `report` binary runs the Figure-4 scenario with full
//! observability: a per-application cycle-breakdown table, a Perfetto
//! trace, and a JSON report (see [`observe`]). The figure binaries accept
//! `--json <path>` to also write their plotted series as JSON. The
//! `pool_bench` binary (see [`poolbench`]) measures the native runtime's
//! work-stealing pool against its central-queue baseline, the
//! `lock_bench` binary (see [`lockbench`]) measures the
//! concurrency-restricting lock against its bare inner spinlock, and the
//! `serverd_bench` binary (see [`serverdbench`]) measures the control
//! server's reactor core against the thread-per-connection baseline.

#![warn(missing_docs)]

pub mod figures;
pub mod fleettrace;
pub mod lockbench;
pub mod observe;
pub mod poolbench;
pub mod report;
pub mod scenario;
#[cfg(unix)]
pub mod serverdbench;

pub use figures::{
    ablation_cache, ablation_crlock, ablation_policies, ablation_poll, baselines, fig1, fig3, fig4,
    fig4_launches, fig4_with_stagger, fig5, fig5_with_stagger, Fig4Row, CR_VARIANTS, PAPER_STAGGER,
};
pub use observe::{cycle_table, report_json, run_json, scenario_trace};
pub use scenario::{
    run_scenario, run_scenario_instrumented, run_scenario_instrumented_tuned, run_scenario_tuned,
    run_solo, run_solo_tuned, spawn_server, spawn_server_logged, AppKind, AppLaunch, AppRun,
    PolicyKind, RunOutcome, ScenarioRun, SimEnv, SERVER_APP,
};
