//! Criterion benchmarks for the native runtime: real threads on the host,
//! measuring (a) the cost of the control machinery itself and (b) the
//! overcommit effect the paper describes, with real matrix work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use native_rt::{Controller, Pool};
use workloads::native::matmul::{matmul_rows, Matrix};

/// Submits `jobs` row-band multiplications to `pool` and waits.
fn run_matmul(pool: &Pool, a: &Arc<Matrix>, b: &Arc<Matrix>, band: usize) {
    let n = a.rows;
    let done = Arc::new(parking_lot::Mutex::new(Matrix::zeros(n, n)));
    for start in (0..n).step_by(band) {
        let (a, b, done) = (Arc::clone(a), Arc::clone(b), Arc::clone(&done));
        pool.execute(move || {
            let rows = start..(start + band).min(a.rows);
            let mut local = Matrix::zeros(a.rows, b.cols);
            matmul_rows(&a, &b, &mut local, rows.clone());
            let mut out = done.lock();
            let cols = out.cols;
            for i in rows {
                let off = i * cols;
                out.data[off..off + cols].copy_from_slice(&local.data[off..off + cols]);
            }
        });
    }
    pool.wait_idle();
}

fn bench_pool_overhead(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut g = c.benchmark_group("native_pool_overhead");
    g.sample_size(20);
    // Empty-ish jobs: measures queue + safe-point cost per job.
    g.bench_function("tiny_jobs_fit", |b| {
        let controller = Controller::new(cores, Duration::from_millis(50));
        let pool = Pool::new(&controller, cores, false);
        b.iter(|| {
            for _ in 0..256 {
                pool.execute(|| {
                    black_box(0u64);
                });
            }
            pool.wait_idle();
        });
    });
    g.bench_function("tiny_jobs_overcommitted_controlled", |b| {
        let controller = Controller::new(cores, Duration::from_millis(50));
        let pool = Pool::new(&controller, cores * 3, false);
        b.iter(|| {
            for _ in 0..256 {
                pool.execute(|| {
                    black_box(0u64);
                });
            }
            pool.wait_idle();
        });
    });
    g.finish();
}

fn bench_matmul_overcommit(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let n = 256;
    let a = Arc::new(Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 13) as f64));
    let bm = Arc::new(Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 17) % 11) as f64));
    let mut g = c.benchmark_group("native_matmul");
    g.sample_size(10);
    for (label, workers, controlled) in [
        ("fit", cores, true),
        ("overcommit_3x_controlled", 3 * cores, true),
        ("overcommit_3x_uncontrolled", 3 * cores, false),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |bch, _| {
            // `controlled=false` is emulated by a controller that thinks
            // the machine has `workers` processors (target == workers, so
            // nothing ever suspends).
            let cpus = if controlled { cores } else { 3 * cores };
            let controller = Controller::new(cpus, Duration::from_millis(20));
            let pool = Pool::new(&controller, workers, false);
            bch.iter(|| run_matmul(&pool, &a, &bm, 8));
        });
    }
    g.finish();
}

criterion_group!(native, bench_pool_overhead, bench_matmul_overcommit);
criterion_main!(native);
