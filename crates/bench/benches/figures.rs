//! Criterion benchmarks: one group per paper figure plus the ablations,
//! at reduced scale so `cargo bench` completes in minutes. Each benchmark
//! measures the host-side cost of regenerating the figure's data (the
//! simulated results themselves are printed by the `fig*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{
    ablation_cache, ablation_poll, fig1, fig3, fig4_with_stagger, fig5_with_stagger, run_solo,
    AppKind, SimEnv,
};
use desim::{SimDur, SimTime};
use workloads::Presets;

const LIMIT: SimTime = SimTime(3_600 * 1_000_000_000);

fn env8() -> SimEnv {
    SimEnv {
        cpus: 8,
        ..SimEnv::default()
    }
}

fn bench_fig1(c: &mut Criterion) {
    let presets = Presets::tiny();
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("pair_sweep", |b| {
        b.iter(|| black_box(fig1(&env8(), &presets, &[2, 8, 16])));
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let presets = Presets::tiny();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for kind in AppKind::ALL {
        g.bench_with_input(
            BenchmarkId::new("solo_overcommitted", kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| black_box(run_solo(&env8(), &presets, kind, 16, None, LIMIT).wall));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("solo_controlled", kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    black_box(
                        run_solo(
                            &env8(),
                            &presets,
                            kind,
                            16,
                            Some(SimDur::from_secs(2)),
                            LIMIT,
                        )
                        .wall,
                    )
                });
            },
        );
    }
    g.bench_function("full_sweep", |b| {
        b.iter(|| black_box(fig3(&env8(), &presets, &[4, 12], SimDur::from_secs(2))));
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let presets = Presets::tiny();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("three_apps_staggered", |b| {
        b.iter(|| {
            black_box(fig4_with_stagger(
                &env8(),
                &presets,
                12,
                SimDur::from_secs(1),
                SimDur::from_millis(500),
            ))
        });
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let presets = Presets::tiny();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("runnable_traces", |b| {
        b.iter(|| {
            black_box(fig5_with_stagger(
                &env8(),
                &presets,
                12,
                SimDur::from_secs(1),
                SimDur::from_millis(500),
            ))
        });
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let presets = Presets::tiny();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("poll_interval", |b| {
        b.iter(|| black_box(ablation_poll(&env8(), &presets, 12, &[1.0, 4.0])));
    });
    g.bench_function("cache_penalty", |b| {
        b.iter(|| black_box(ablation_cache(&presets, 12, SimDur::from_secs(2))));
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_ablations
);
criterion_main!(figures);
