//! Real numeric kernels for the native runtime.
//!
//! The simulated figures use the task-graph models in [`crate::sim`]; these
//! are the actual algorithms (same shapes, real arithmetic) that the
//! `native-rt` crate runs on OS threads, demonstrating the process-control
//! protocol with genuine computation.

pub mod fft;
pub mod gauss;
pub mod matmul;
pub mod sort;
