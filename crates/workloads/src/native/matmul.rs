//! Dense matrix multiplication, row-band parallelizable.

/// A dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f64>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a generator.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }
}

/// Multiplies the row band `rows` of `a` by `b` into the matching rows of
/// `out`. This is the unit of work a parallel worker executes — "the
/// multiplication is parallelized by splitting the multiplicand by rows".
///
/// # Panics
///
/// Panics if dimensions disagree or the band is out of range.
pub fn matmul_rows(a: &Matrix, b: &Matrix, out: &mut Matrix, rows: std::ops::Range<usize>) {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    assert_eq!(out.rows, a.rows);
    assert_eq!(out.cols, b.cols);
    assert!(rows.end <= a.rows, "row band out of range");
    for i in rows {
        for k in 0..a.cols {
            let aik = a.at(i, k);
            if aik == 0.0 {
                continue;
            }
            let brow = &b.data[k * b.cols..(k + 1) * b.cols];
            let orow = &mut out.data[i * out.cols..(i + 1) * out.cols];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
}

/// Full sequential multiply (reference).
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, b.cols);
    matmul_rows(a, b, &mut out, 0..a.rows);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(5, 5, |i, j| (i * 7 + j) as f64);
        let i = Matrix::identity(5);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn known_product() {
        let a = Matrix {
            rows: 2,
            cols: 3,
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        let b = Matrix {
            rows: 3,
            cols: 2,
            data: vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0],
        };
        let c = matmul(&a, &b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn banded_multiply_matches_full() {
        let a = Matrix::from_fn(8, 8, |i, j| ((i + 1) * (j + 2) % 7) as f64);
        let b = Matrix::from_fn(8, 8, |i, j| ((i * 3 + j * 5) % 11) as f64);
        let full = matmul(&a, &b);
        let mut banded = Matrix::zeros(8, 8);
        matmul_rows(&a, &b, &mut banded, 0..3);
        matmul_rows(&a, &b, &mut banded, 3..6);
        matmul_rows(&a, &b, &mut banded, 6..8);
        assert_eq!(full, banded);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        matmul(&a, &b);
    }
}
