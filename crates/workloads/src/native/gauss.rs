//! Gaussian elimination with partial pivoting and back substitution.
//!
//! "The solution is computed using partial pivoting and back substitution,
//! and the row elimination is parallelized." The elimination of step `k`
//! over a band of rows is the parallel unit ([`System::eliminate_rows`]); pivot
//! selection and back substitution are the serial sections.

use crate::native::matmul::Matrix;

/// An augmented system `[A | b]` being reduced in place.
#[derive(Clone, Debug)]
pub struct System {
    /// `n x (n+1)` augmented matrix.
    pub m: Matrix,
}

impl System {
    /// Builds the augmented system from `A` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square or `b` has the wrong length.
    pub fn new(a: &Matrix, b: &[f64]) -> Self {
        assert_eq!(a.rows, a.cols, "A must be square");
        assert_eq!(b.len(), a.rows, "b must match A");
        let n = a.rows;
        let m = Matrix::from_fn(n, n + 1, |i, j| if j < n { a.at(i, j) } else { b[i] });
        System { m }
    }

    /// Dimension of the system.
    pub fn n(&self) -> usize {
        self.m.rows
    }

    /// Serial pivot step: find the largest |entry| in column `k` at or
    /// below row `k` and swap that row up. Returns false if the pivot is
    /// (numerically) zero — a singular system.
    pub fn pivot(&mut self, k: usize) -> bool {
        let n = self.n();
        let cols = self.m.cols;
        let (mut best, mut best_val) = (k, self.m.at(k, k).abs());
        for i in k + 1..n {
            let v = self.m.at(i, k).abs();
            if v > best_val {
                best = i;
                best_val = v;
            }
        }
        if best_val < 1e-12 {
            return false;
        }
        if best != k {
            for j in 0..cols {
                self.m.data.swap(k * cols + j, best * cols + j);
            }
        }
        true
    }

    /// Parallel unit: eliminate column `k` from the rows in `rows`
    /// (all must be > `k`). Different bands are independent.
    pub fn eliminate_rows(&mut self, k: usize, rows: std::ops::Range<usize>) {
        let cols = self.m.cols;
        debug_assert!(rows.start > k && rows.end <= self.n());
        let pivot = self.m.at(k, k);
        debug_assert!(pivot.abs() > 0.0, "eliminate before pivoting");
        for i in rows {
            let factor = self.m.at(i, k) / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in k..cols {
                let above = self.m.data[k * cols + j];
                self.m.data[i * cols + j] -= factor * above;
            }
        }
    }

    /// Serial back substitution on the reduced system.
    pub fn back_substitute(&self) -> Vec<f64> {
        let n = self.n();
        let cols = self.m.cols;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = self.m.data[i * cols + n];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.m.at(i, j) * xj;
            }
            x[i] = acc / self.m.at(i, i);
        }
        x
    }
}

/// Full sequential solve (reference). Returns `None` for singular systems.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let mut sys = System::new(a, b);
    let n = sys.n();
    for k in 0..n {
        if !sys.pivot(k) {
            return None;
        }
        if k + 1 < n {
            sys.eliminate_rows(k, k + 1..n);
        }
    }
    Some(sys.back_substitute())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Matrix {
            rows: 2,
            cols: 2,
            data: vec![2.0, 1.0, 1.0, 3.0],
        };
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn residual_small_on_random_system() {
        let n = 40;
        let mut seed = 99u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        // Diagonally dominant to stay well-conditioned.
        let a = Matrix::from_fn(n, n, |i, j| if i == j { 10.0 + next() } else { next() });
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(&a, &b).unwrap();
        for (i, &bi) in b.iter().enumerate() {
            let ax: f64 = (0..n).map(|j| a.at(i, j) * x[j]).sum();
            assert!((ax - bi).abs() < 1e-8, "row {i} residual {}", ax - bi);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Without partial pivoting this system would divide by zero.
        let a = Matrix {
            rows: 2,
            cols: 2,
            data: vec![0.0, 1.0, 1.0, 0.0],
        };
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_detected() {
        let a = Matrix {
            rows: 2,
            cols: 2,
            data: vec![1.0, 2.0, 2.0, 4.0],
        };
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn banded_elimination_matches_full() {
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                8.0
            } else {
                ((i * 5 + j * 3) % 7) as f64 - 3.0
            }
        });
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // Reference: full elimination.
        let expect = solve(&a, &b).unwrap();
        // Banded: split each step's elimination into two bands.
        let mut sys = System::new(&a, &b);
        for k in 0..n {
            assert!(sys.pivot(k));
            let lo = k + 1;
            if lo < n {
                let mid = lo + (n - lo) / 2;
                sys.eliminate_rows(k, lo..mid);
                sys.eliminate_rows(k, mid..n);
            }
        }
        let got = sys.back_substitute();
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9);
        }
    }
}
