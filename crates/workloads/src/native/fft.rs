//! One-dimensional radix-2 FFT.
//!
//! An iterative Cooley–Tukey implementation whose butterfly passes are the
//! parallel phases of the Norton–Silberger algorithm the paper used: each
//! pass over the array can be split into independent chunks, with a
//! barrier between passes.

use std::f64::consts::PI;

/// A complex number (we avoid an external dependency for one struct).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{i·theta}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// Bit-reversal permutation (the scramble pass before the butterflies).
pub fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

/// Executes the butterflies of one FFT stage (`len` = butterfly span) for
/// the group range `groups` — the parallel chunk of one phase.
///
/// Stage `s` (1-based) has span `len = 2^s`; there are `n / len` groups,
/// each independent of the others.
pub fn fft_stage_groups(data: &mut [Complex], len: usize, groups: std::ops::Range<usize>) {
    let n = data.len();
    debug_assert!(len.is_power_of_two() && len <= n);
    let half = len / 2;
    let step = -2.0 * PI / len as f64; // forward transform
    for g in groups {
        let base = g * len;
        debug_assert!(base + len <= n);
        for k in 0..half {
            let w = Complex::cis(step * k as f64);
            let a = data[base + k];
            let b = data[base + k + half].mul(w);
            data[base + k] = a.add(b);
            data[base + k + half] = a.sub(b);
        }
    }
}

/// Full sequential FFT (reference and convenience).
pub fn fft(data: &mut [Complex]) {
    let n = data.len();
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        fft_stage_groups(data, len, 0..n / len);
        len *= 2;
    }
}

/// Naive DFT, used as the test oracle.
pub fn dft_reference(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (j, &x) in input.iter().enumerate() {
                let w = Complex::cis(-2.0 * PI * (k * j) as f64 / n as f64);
                acc = acc.add(x.mul(w));
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9
    }

    #[test]
    fn matches_dft_on_random_data() {
        let mut rng = 123u64;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        let input: Vec<Complex> = (0..64).map(|_| Complex::new(next(), next())).collect();
        let expect = dft_reference(&input);
        let mut data = input;
        fft(&mut data);
        for (a, b) in data.iter().zip(&expect) {
            assert!(close(*a, *b), "{a:?} != {b:?}");
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex::default(); 16];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data);
        for x in &data {
            assert!(close(*x, Complex::new(1.0, 0.0)));
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut data = vec![Complex::new(1.0, 0.0); 8];
        fft(&mut data);
        assert!(close(data[0], Complex::new(8.0, 0.0)));
        for x in &data[1..] {
            assert!(x.abs() < 1e-9);
        }
    }

    #[test]
    fn stage_groups_compose_to_full_stage() {
        let mut rng = 7u64;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng >> 33) as f64 / (1u64 << 31) as f64
        };
        let base: Vec<Complex> = (0..32).map(|_| Complex::new(next(), next())).collect();
        // One full stage vs the same stage split into chunks.
        let mut whole = base.clone();
        fft_stage_groups(&mut whole, 8, 0..4);
        let mut split = base;
        fft_stage_groups(&mut split, 8, 0..2);
        fft_stage_groups(&mut split, 8, 2..4);
        assert_eq!(whole, split);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex::default(); 12];
        bit_reverse_permute(&mut data);
    }
}
