//! Parallel merge sort building blocks: heapsort leaves, pairwise merges.

/// In-place heapsort — the paper's leaf sorter ("simultaneously sorting a
/// number of small lists of numbers with heapsort").
pub fn heapsort<T: Ord>(xs: &mut [T]) {
    let n = xs.len();
    // Build a max-heap.
    for i in (0..n / 2).rev() {
        sift_down(xs, i, n);
    }
    // Pop the max to the end repeatedly.
    for end in (1..n).rev() {
        xs.swap(0, end);
        sift_down(xs, 0, end);
    }
}

fn sift_down<T: Ord>(xs: &mut [T], mut root: usize, end: usize) {
    loop {
        let mut child = 2 * root + 1;
        if child >= end {
            return;
        }
        if child + 1 < end && xs[child] < xs[child + 1] {
            child += 1;
        }
        if xs[root] >= xs[child] {
            return;
        }
        xs.swap(root, child);
        root = child;
    }
}

/// Merges two sorted runs into a fresh vector.
pub fn merge<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "left run unsorted");
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "right run unsorted");
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sequential reference: split into `leaves` runs, heapsort each, merge
/// pairwise — exactly the parallel algorithm's work, done serially.
pub fn merge_sort_via_leaves<T: Ord + Copy>(xs: &[T], leaves: usize) -> Vec<T> {
    assert!(leaves >= 1 && leaves.is_power_of_two());
    let chunk = xs.len().div_ceil(leaves);
    let mut runs: Vec<Vec<T>> = xs
        .chunks(chunk.max(1))
        .map(|c| {
            let mut v = c.to_vec();
            heapsort(&mut v);
            v
        })
        .collect();
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len() / 2 + 1);
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge(&a, &b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, mut seed: u64) -> Vec<i64> {
        (0..n)
            .map(|_| {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (seed >> 20) as i64 % 10_000
            })
            .collect()
    }

    #[test]
    fn heapsort_sorts() {
        let mut xs = pseudo_random(1000, 42);
        let mut expect = xs.clone();
        expect.sort_unstable();
        heapsort(&mut xs);
        assert_eq!(xs, expect);
    }

    #[test]
    fn heapsort_handles_edges() {
        let mut empty: Vec<i32> = vec![];
        heapsort(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![5];
        heapsort(&mut one);
        assert_eq!(one, vec![5]);
        let mut dups = vec![3, 3, 3, 1, 1, 2];
        heapsort(&mut dups);
        assert_eq!(dups, vec![1, 1, 2, 3, 3, 3]);
    }

    #[test]
    fn merge_interleaves() {
        assert_eq!(merge(&[1, 4, 6], &[2, 3, 5]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(merge::<i32>(&[], &[1]), vec![1]);
        assert_eq!(merge(&[1, 1], &[1]), vec![1, 1, 1]);
    }

    #[test]
    fn leafwise_sort_matches_std() {
        for leaves in [1usize, 2, 8, 32] {
            let xs = pseudo_random(997, leaves as u64); // non-divisible length
            let mut expect = xs.clone();
            expect.sort_unstable();
            assert_eq!(
                merge_sort_via_leaves(&xs, leaves),
                expect,
                "leaves={leaves}"
            );
        }
    }

    #[test]
    fn sorted_input_stays_sorted() {
        let xs: Vec<i64> = (0..500).collect();
        assert_eq!(merge_sort_via_leaves(&xs, 16), xs);
    }
}
