//! Task-graph builders: the paper's four applications as `uthreads` specs.
//!
//! Each builder returns an [`AppSpec`] whose task structure mirrors the
//! corresponding application's synchronization pattern; the actual numeric
//! work is abstracted into calibrated compute durations (the real kernels
//! live in [`crate::native`] and run on the native runtime).

use desim::SimDur;
use simkernel::LockId;
use uthreads::{AppSpec, ChanId, FnTask, Task, TaskBody, TaskEvent, TaskOp};

use crate::params::{FftParams, GaussParams, MatmulParams, SortParams};

/// Matrix multiplication: "the multiplication is parallelized by splitting
/// the multiplicand by rows" — independent, equal tasks, no inter-task
/// synchronization beyond the package's ready queue.
pub fn matmul_spec(p: &MatmulParams) -> AppSpec {
    let tasks = (0..p.tasks)
        .map(|_| Task::compute("matmul-rows", p.task_cost))
        .collect();
    AppSpec::tasks(tasks)
}

/// One persistent FFT chunk: compute, meet everyone at the phase barrier,
/// repeat for each phase.
struct FftChunk {
    phases_left: u32,
    cost: SimDur,
    barrier: uthreads::BarrierId,
}

impl TaskBody for FftChunk {
    fn step(&mut self, event: TaskEvent) -> TaskOp {
        match event {
            TaskEvent::Start | TaskEvent::BarrierPassed => {
                if self.phases_left == 0 {
                    TaskOp::Done
                } else {
                    TaskOp::Compute(self.cost)
                }
            }
            TaskEvent::ComputeDone => {
                self.phases_left -= 1;
                TaskOp::Barrier(self.barrier)
            }
            other => unreachable!("fft chunk got {other:?}"),
        }
    }
}

/// FFT after Norton & Silberger: "several loops that were broken into
/// parts to provide parallelism" — `chunks` persistent tasks execute
/// `phases` loop bodies separated by barriers.
pub fn fft_spec(p: &FftParams) -> AppSpec {
    let mut spec = AppSpec::tasks(vec![]);
    let barrier = spec.add_barrier(p.chunks);
    for _ in 0..p.chunks {
        spec.tasks.push(Task::new(
            "fft-chunk",
            Box::new(FftChunk {
                phases_left: p.phases,
                cost: p.chunk_cost,
                barrier,
            }),
        ));
    }
    spec
}

/// A merge node: receive both input runs, merge (compute), pass the result
/// up; `level` 0 is a heapsort leaf.
struct SortNode {
    /// 0 = leaf (heapsort); >0 = merge of two level-1 runs.
    level: u32,
    cost: SimDur,
    /// Channel to the parent node, if any (the root has none).
    parent: Option<ChanId>,
    /// Channel this node receives its children's completions on.
    inputs: Option<ChanId>,
    received: u32,
}

impl TaskBody for SortNode {
    fn step(&mut self, event: TaskEvent) -> TaskOp {
        match event {
            TaskEvent::Start => {
                if self.level == 0 {
                    TaskOp::Compute(self.cost) // heapsort the leaf
                } else {
                    TaskOp::Recv(self.inputs.expect("merge node has inputs"))
                }
            }
            TaskEvent::Received(_) => {
                self.received += 1;
                if self.received < 2 {
                    TaskOp::Recv(self.inputs.expect("merge node has inputs"))
                } else {
                    TaskOp::Compute(self.cost) // merge the two runs
                }
            }
            TaskEvent::ComputeDone => match self.parent {
                Some(ch) => TaskOp::Send(ch, 1),
                None => TaskOp::Done,
            },
            TaskEvent::Sent => TaskOp::Done,
            other => unreachable!("sort node got {other:?}"),
        }
    }
}

/// Merge sort: "simultaneously sorting a number of small lists with
/// heapsort, and then merging pairs of sorted lists in parallel until the
/// final sorted list is achieved." Parallelism halves at each merge level.
pub fn sort_spec(p: &SortParams) -> AppSpec {
    assert!(p.leaves.is_power_of_two(), "leaves must be a power of two");
    let mut spec = AppSpec::tasks(vec![]);
    // One channel per internal (merge) node; nodes are numbered as in a
    // binary heap: node 1 is the root, node i has children 2i and 2i+1.
    // Internal nodes are 1..leaves; leaves occupy leaves..2*leaves.
    let n_internal = (p.leaves - 1) as usize;
    let chans: Vec<ChanId> = (0..n_internal).map(|_| spec.add_channel()).collect();
    let chan_of = |node: u32| -> Option<ChanId> {
        if node >= 1 && node < p.leaves {
            Some(chans[(node - 1) as usize])
        } else {
            None
        }
    };
    let levels = p.leaves.trailing_zeros();
    // Internal merge nodes.
    for node in 1..p.leaves {
        let depth = 32 - node.leading_zeros() - 1; // root = 0
        let level = levels - depth; // leaves' parents have level 1
        let runs = 1u64 << level; // each input run is runs/2 leaf-sizes
        spec.tasks.push(Task::new(
            "sort-merge",
            Box::new(SortNode {
                level,
                cost: p.merge_unit * runs,
                parent: chan_of(node / 2),
                inputs: chan_of(node),
                received: 0,
            }),
        ));
    }
    // Leaves.
    for node in p.leaves..2 * p.leaves {
        spec.tasks.push(Task::new(
            "sort-leaf",
            Box::new(SortNode {
                level: 0,
                cost: p.leaf_cost,
                parent: chan_of(node / 2),
                inputs: None,
                received: 0,
            }),
        ));
    }
    spec
}

/// The gauss coordinator: per step, spawn the row tasks, collect their
/// completions, do the serial pivot work, move on.
struct GaussCoordinator {
    p: GaussParams,
    step: u32,
    rows_spawned: u32,
    rows_done: u32,
    chan: ChanId,
}

impl GaussCoordinator {
    fn rows_in_step(&self) -> u32 {
        self.p.steps - self.step
    }

    fn row_cost(&self) -> SimDur {
        // Row work shrinks with the remaining submatrix.
        let frac = f64::from(self.p.steps - self.step) / f64::from(self.p.steps);
        self.p.row_cost.mul_f64(frac)
    }

    fn next(&mut self) -> TaskOp {
        if self.step >= self.p.steps {
            return TaskOp::Done;
        }
        if self.rows_spawned < self.rows_in_step() {
            self.rows_spawned += 1;
            let cost = self.row_cost();
            let chan = self.chan;
            let mut sent = false;
            return TaskOp::Spawn(Task::new(
                "gauss-row",
                Box::new(FnTask(move |ev: TaskEvent| match ev {
                    TaskEvent::Start => TaskOp::Compute(cost),
                    TaskEvent::ComputeDone if !sent => {
                        sent = true;
                        TaskOp::Send(chan, 1)
                    }
                    _ => TaskOp::Done,
                })),
            ));
        }
        if self.rows_done < self.rows_in_step() {
            return TaskOp::Recv(self.chan);
        }
        // All rows eliminated: serial pivot for the next step.
        self.step += 1;
        self.rows_spawned = 0;
        self.rows_done = 0;
        TaskOp::Compute(self.p.pivot_cost)
    }
}

impl TaskBody for GaussCoordinator {
    fn step(&mut self, event: TaskEvent) -> TaskOp {
        if matches!(event, TaskEvent::Received(_)) {
            self.rows_done += 1;
        }
        self.next()
    }
}

/// Gaussian elimination with partial pivoting: "the row elimination is
/// parallelized" — step `k` eliminates column `k` from the remaining rows
/// in parallel, with a serial pivot between steps. The finest-grained of
/// the four applications.
pub fn gauss_spec(p: &GaussParams) -> AppSpec {
    let mut spec = AppSpec::tasks(vec![]);
    let chan = spec.add_channel();
    spec.tasks.push(Task::new(
        "gauss-coord",
        Box::new(GaussCoordinator {
            p: *p,
            step: 0,
            rows_spawned: 0,
            rows_done: 0,
            chan,
        }),
    ));
    spec
}

/// A synthetic workload with an explicit application-level critical
/// section: each task alternates open computation with a locked section.
/// `cs_fraction` of the grain is spent holding `lock`. Used by the
/// fine-grained-contention ablation.
pub fn synthetic_cs_spec(
    tasks: u32,
    repeats: u32,
    grain: SimDur,
    cs_fraction: f64,
    lock: LockId,
) -> AppSpec {
    assert!((0.0..=1.0).contains(&cs_fraction));
    let open = grain.mul_f64(1.0 - cs_fraction);
    let cs = grain.mul_f64(cs_fraction);
    let mk = move || {
        let mut left = repeats;
        let mut in_cs = false;
        Task::new(
            "synthetic-cs",
            Box::new(FnTask(move |ev: TaskEvent| match ev {
                TaskEvent::Start => TaskOp::Compute(open),
                TaskEvent::ComputeDone if !in_cs => {
                    in_cs = true;
                    TaskOp::Lock(lock)
                }
                TaskEvent::Locked => TaskOp::Compute(cs),
                TaskEvent::ComputeDone => TaskOp::Unlock(lock),
                TaskEvent::Unlocked => {
                    in_cs = false;
                    left -= 1;
                    if left == 0 {
                        TaskOp::Done
                    } else {
                        TaskOp::Compute(open)
                    }
                }
                other => unreachable!("synthetic task got {other:?}"),
            })),
        )
    };
    AppSpec::tasks((0..tasks).map(|_| mk()).collect())
}

/// A producer/consumer pipeline (the paper's degradation mechanism #2):
/// `pairs` producers each push `items` values through a channel to a
/// matching consumer; the consumer does the heavier half of the work.
pub fn producer_consumer_spec(
    pairs: u32,
    items: u32,
    produce_cost: SimDur,
    consume_cost: SimDur,
) -> AppSpec {
    let mut spec = AppSpec::tasks(vec![]);
    for _ in 0..pairs {
        let ch = spec.add_channel();
        let mut left = items;
        spec.tasks.push(Task::new(
            "producer",
            Box::new(FnTask(move |ev: TaskEvent| match ev {
                TaskEvent::Start => TaskOp::Compute(produce_cost),
                TaskEvent::ComputeDone => TaskOp::Send(ch, 1),
                TaskEvent::Sent => {
                    left -= 1;
                    if left == 0 {
                        TaskOp::Done
                    } else {
                        TaskOp::Compute(produce_cost)
                    }
                }
                other => unreachable!("producer got {other:?}"),
            })),
        ));
        let mut to_eat = items;
        spec.tasks.push(Task::new(
            "consumer",
            Box::new(FnTask(move |ev: TaskEvent| match ev {
                TaskEvent::Start => TaskOp::Recv(ch),
                TaskEvent::Received(_) => TaskOp::Compute(consume_cost),
                TaskEvent::ComputeDone => {
                    to_eat -= 1;
                    if to_eat == 0 {
                        TaskOp::Done
                    } else {
                        TaskOp::Recv(ch)
                    }
                }
                other => unreachable!("consumer got {other:?}"),
            })),
        ));
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Presets;

    #[test]
    fn matmul_spec_shape() {
        let s = matmul_spec(&Presets::tiny().matmul);
        assert_eq!(s.tasks.len(), 64);
        assert!(s.barriers.is_empty());
        assert_eq!(s.channels, 0);
    }

    #[test]
    fn fft_spec_shape() {
        let p = Presets::tiny().fft;
        let s = fft_spec(&p);
        assert_eq!(s.tasks.len(), p.chunks as usize);
        assert_eq!(s.barriers, vec![p.chunks]);
    }

    #[test]
    fn sort_spec_shape() {
        let p = Presets::tiny().sort;
        let s = sort_spec(&p);
        // leaves + internal nodes = 2 * leaves - 1 tasks.
        assert_eq!(s.tasks.len(), (2 * p.leaves - 1) as usize);
        assert_eq!(s.channels, p.leaves - 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn sort_rejects_non_power_of_two() {
        let mut p = Presets::tiny().sort;
        p.leaves = 12;
        sort_spec(&p);
    }

    #[test]
    fn gauss_spec_shape() {
        let s = gauss_spec(&Presets::tiny().gauss);
        assert_eq!(s.tasks.len(), 1, "gauss starts with only a coordinator");
        assert_eq!(s.channels, 1);
    }

    #[test]
    fn synthetic_fraction_bounds() {
        let s = synthetic_cs_spec(4, 2, SimDur::from_millis(10), 0.25, simkernel::LockId(0));
        assert_eq!(s.tasks.len(), 4);
    }

    #[test]
    #[should_panic]
    fn synthetic_rejects_bad_fraction() {
        synthetic_cs_spec(1, 1, SimDur::from_millis(1), 1.5, simkernel::LockId(0));
    }

    #[test]
    fn producer_consumer_shape() {
        let s = producer_consumer_spec(3, 10, SimDur::from_millis(1), SimDur::from_millis(2));
        assert_eq!(s.tasks.len(), 6);
        assert_eq!(s.channels, 3);
    }
}

/// A node of the fork/join tree: internal nodes spawn their children at
/// runtime (recursive task creation, as in the task-queue languages the
/// paper cites), await their completions, combine, and report upward.
struct ForkJoinNode {
    /// This node's index in the fan-ary heap numbering (1-based).
    node: u32,
    depth_left: u32,
    fan: u32,
    leaf_cost: SimDur,
    combine_cost: SimDur,
    /// Channel to the parent (`None` for the root).
    parent: Option<ChanId>,
    spawned: u32,
    received: u32,
}

impl ForkJoinNode {
    fn child_index(&self, i: u32) -> u32 {
        self.fan * (self.node - 1) + 2 + i
    }

    fn my_chan(&self) -> ChanId {
        ChanId(self.node - 1)
    }
}

impl TaskBody for ForkJoinNode {
    fn step(&mut self, event: TaskEvent) -> TaskOp {
        if self.depth_left == 0 {
            // Leaf: compute and report.
            return match event {
                TaskEvent::Start => TaskOp::Compute(self.leaf_cost),
                TaskEvent::ComputeDone => match self.parent {
                    Some(ch) => TaskOp::Send(ch, 1),
                    None => TaskOp::Done,
                },
                TaskEvent::Sent => TaskOp::Done,
                other => unreachable!("fork-join leaf got {other:?}"),
            };
        }
        match event {
            TaskEvent::Start | TaskEvent::Spawned if self.spawned < self.fan => {
                let child = ForkJoinNode {
                    node: self.child_index(self.spawned),
                    depth_left: self.depth_left - 1,
                    fan: self.fan,
                    leaf_cost: self.leaf_cost,
                    combine_cost: self.combine_cost,
                    parent: Some(self.my_chan()),
                    spawned: 0,
                    received: 0,
                };
                self.spawned += 1;
                TaskOp::Spawn(Task::new("forkjoin-node", Box::new(child)))
            }
            TaskEvent::Spawned => TaskOp::Recv(self.my_chan()),
            TaskEvent::Received(_) => {
                self.received += 1;
                if self.received < self.fan {
                    TaskOp::Recv(self.my_chan())
                } else {
                    TaskOp::Compute(self.combine_cost)
                }
            }
            TaskEvent::ComputeDone => match self.parent {
                Some(ch) => TaskOp::Send(ch, 1),
                None => TaskOp::Done,
            },
            TaskEvent::Sent => TaskOp::Done,
            other => unreachable!("fork-join node got {other:?}"),
        }
    }
}

/// A divide-and-conquer workload: a `fan`-ary tree of `depth` levels whose
/// internal nodes *recursively spawn* their children (unlike the sort
/// tree, which pre-creates every task). Exercises dynamic task creation
/// under the queue lock, the model behind the task-queue parallel
/// languages the paper cites (QLisp et al.).
pub fn fork_join_spec(depth: u32, fan: u32, leaf_cost: SimDur, combine_cost: SimDur) -> AppSpec {
    assert!(fan >= 2, "a fork needs at least two branches");
    assert!(depth >= 1, "use a plain compute task for depth 0");
    let mut spec = AppSpec::tasks(vec![]);
    // One channel per potential internal node (heap numbering).
    let internal = (fan.pow(depth) - 1) / (fan - 1);
    for _ in 0..internal {
        spec.add_channel();
    }
    spec.tasks.push(Task::new(
        "forkjoin-root",
        Box::new(ForkJoinNode {
            node: 1,
            depth_left: depth,
            fan,
            leaf_cost,
            combine_cost,
            parent: None,
            spawned: 0,
            received: 0,
        }),
    ));
    spec
}
