//! `workloads` — the paper's applications, twice over.
//!
//! 1. [`sim`] — task-graph models of the four evaluated applications
//!    (`matmul`, `fft`, `sort`, `gauss`) plus synthetic/producer-consumer
//!    workloads, expressed as `uthreads` specs for the simulated kernel.
//!    Each model reproduces the synchronization *shape* described in the
//!    paper (Section 6) with calibrated compute durations.
//! 2. [`native`] — the real numeric kernels (dense matmul, radix-2 FFT,
//!    heapsort + merge tree, partial-pivot Gaussian elimination) used by
//!    the `native-rt` thread pool.
//!
//! [`load`] generates *uncontrollable* processes (batch and interactive)
//! for multiprogramming scenarios, and [`params`] holds paper-calibrated
//! problem sizes.

#![warn(missing_docs)]

pub mod load;
pub mod native;
pub mod params;
pub mod sim;

pub use params::{FftParams, GaussParams, MatmulParams, Presets, SortParams};
pub use sim::{
    fft_spec, fork_join_spec, gauss_spec, matmul_spec, producer_consumer_spec, sort_spec,
    synthetic_cs_spec,
};
