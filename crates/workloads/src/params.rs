//! Workload parameter presets.
//!
//! Absolute durations are calibrated so that, like the paper's runs on the
//! 16-processor Multimax, each application takes tens of seconds of
//! simulated time at 16 processes and the four applications have distinct
//! characters:
//!
//! - `matmul` — embarrassingly parallel, coarse independent tasks;
//! - `fft`   — phase-parallel loops with a barrier per phase
//!   (Norton–Silberger "several loops broken into parts");
//! - `sort`  — parallel heapsort leaves, then a pairwise merge tree whose
//!   parallelism halves per level (long sequential tail);
//! - `gauss` — elimination steps with per-step barriers and shrinking,
//!   uneven row work plus a serial pivot section (finest-grained).

use desim::SimDur;

/// Matrix-multiplication workload shape.
#[derive(Clone, Copy, Debug)]
pub struct MatmulParams {
    /// Number of independent row-band tasks.
    pub tasks: u32,
    /// Cost of one task.
    pub task_cost: SimDur,
}

/// FFT workload shape.
#[derive(Clone, Copy, Debug)]
pub struct FftParams {
    /// Number of barrier-separated phases (the broken-up loops).
    pub phases: u32,
    /// Parallel chunks per phase (persistent tasks meeting at a barrier).
    pub chunks: u32,
    /// Cost of one chunk in one phase.
    pub chunk_cost: SimDur,
}

/// Merge-sort workload shape.
#[derive(Clone, Copy, Debug)]
pub struct SortParams {
    /// Number of small lists (heapsort leaves); must be a power of two.
    pub leaves: u32,
    /// Cost of heapsorting one leaf.
    pub leaf_cost: SimDur,
    /// Cost of merging two runs of one leaf-size each; a merge at tree
    /// level `l` (leaves = level 0) costs `2^l` times this.
    pub merge_unit: SimDur,
}

/// Gaussian-elimination workload shape.
#[derive(Clone, Copy, Debug)]
pub struct GaussParams {
    /// Matrix dimension in row-band units: step `k` eliminates into
    /// `steps - k` row tasks.
    pub steps: u32,
    /// Cost of one row task at step 0; shrinks linearly with the remaining
    /// submatrix.
    pub row_cost: SimDur,
    /// Serial (coordinator) cost per step: pivot selection + swap.
    pub pivot_cost: SimDur,
}

/// The four applications at paper scale.
#[derive(Clone, Copy, Debug)]
pub struct Presets {
    /// Matmul preset.
    pub matmul: MatmulParams,
    /// FFT preset.
    pub fft: FftParams,
    /// Sort preset.
    pub sort: SortParams,
    /// Gauss preset.
    pub gauss: GaussParams,
}

impl Presets {
    /// Paper-scale problems: solo 16-process runtimes in the 15–35 s band.
    pub fn paper() -> Self {
        Presets {
            matmul: MatmulParams {
                tasks: 16_384,
                task_cost: SimDur::from_millis(20),
            },
            fft: FftParams {
                phases: 96,
                chunks: 64,
                chunk_cost: SimDur::from_millis(50),
            },
            sort: SortParams {
                leaves: 1_024,
                leaf_cost: SimDur::from_millis(150),
                merge_unit: SimDur::from_millis(10),
            },
            gauss: GaussParams {
                steps: 96,
                row_cost: SimDur::from_millis(100),
                pivot_cost: SimDur::from_millis(20),
            },
        }
    }

    /// Scaled-down problems for fast tests: same shapes, ~50× less work.
    pub fn tiny() -> Self {
        Presets {
            matmul: MatmulParams {
                tasks: 64,
                task_cost: SimDur::from_millis(40),
            },
            fft: FftParams {
                phases: 5,
                chunks: 16,
                chunk_cost: SimDur::from_millis(30),
            },
            sort: SortParams {
                leaves: 32,
                leaf_cost: SimDur::from_millis(40),
                merge_unit: SimDur::from_millis(8),
            },
            gauss: GaussParams {
                steps: 16,
                row_cost: SimDur::from_millis(25),
                pivot_cost: SimDur::from_millis(5),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_have_paperish_totals() {
        let p = Presets::paper();
        // Total sequential work per app, in seconds.
        let matmul = p.matmul.tasks as f64 * p.matmul.task_cost.as_secs_f64();
        let fft = (p.fft.phases * p.fft.chunks) as f64 * p.fft.chunk_cost.as_secs_f64();
        // Solo at 16 procs ≈ total/16 (+ sync overhead): should land
        // in the paper's tens-of-seconds regime.
        for (name, total) in [("matmul", matmul), ("fft", fft)] {
            let solo16 = total / 16.0;
            assert!(
                (10.0..60.0).contains(&solo16),
                "{name}: {solo16:.1}s at 16 procs"
            );
        }
    }

    #[test]
    fn sort_leaves_power_of_two() {
        assert!(Presets::paper().sort.leaves.is_power_of_two());
        assert!(Presets::tiny().sort.leaves.is_power_of_two());
    }
}
