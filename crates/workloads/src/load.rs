//! Generators for *uncontrollable* load — processes outside the
//! process-control scheme: batch jobs, compilers, editors, daemons.
//! Section 7 motivates these: "there may be single-process applications
//! like compilers, editors, and network daemons", and the server must
//! subtract their processor usage before partitioning.

use desim::SimDur;
use simkernel::{Action, AppId, Kernel, Pid, Script};

/// Spawns `procs` CPU-bound batch processes (think: compiles) that each
/// compute for `each` and exit. Returns their pids.
pub fn spawn_batch_load(
    kernel: &mut Kernel,
    app: AppId,
    procs: u32,
    each: SimDur,
    ws_lines: u64,
) -> Vec<Pid> {
    (0..procs)
        .map(|_| {
            kernel.spawn_root(
                app,
                ws_lines,
                Box::new(Script::new(vec![Action::Compute(each)])),
            )
        })
        .collect()
}

/// Spawns an interactive-style process (think: editor): alternates short
/// bursts of computation with think-time sleeps, `cycles` times.
pub fn spawn_interactive_load(
    kernel: &mut Kernel,
    app: AppId,
    burst: SimDur,
    think: SimDur,
    cycles: u32,
    ws_lines: u64,
) -> Pid {
    let mut script = Vec::with_capacity(2 * cycles as usize);
    for _ in 0..cycles {
        script.push(Action::Compute(burst));
        script.push(Action::Sleep(think));
    }
    kernel.spawn_root(app, ws_lines, Box::new(Script::new(script)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;
    use simkernel::policy::FifoRoundRobin;
    use simkernel::KernelConfig;

    #[test]
    fn batch_load_occupies_processors() {
        let mut k = Kernel::new(
            KernelConfig::multimax().with_cpus(2),
            Box::new(FifoRoundRobin::new()),
        );
        let pids = spawn_batch_load(&mut k, AppId(9), 2, SimDur::from_millis(50), 64);
        assert_eq!(pids.len(), 2);
        assert_eq!(k.runnable_count(), 2);
        assert!(k.run_to_completion(SimTime::ZERO + SimDur::from_secs(2)));
        for pid in pids {
            assert!(k.proc_accounting(pid).work >= SimDur::from_millis(50));
        }
    }

    #[test]
    fn interactive_load_sleeps_between_bursts() {
        let mut k = Kernel::new(
            KernelConfig::multimax().with_cpus(1),
            Box::new(FifoRoundRobin::new()),
        );
        let pid = spawn_interactive_load(
            &mut k,
            AppId(9),
            SimDur::from_millis(10),
            SimDur::from_millis(90),
            5,
            64,
        );
        assert!(k.run_to_completion(SimTime::ZERO + SimDur::from_secs(5)));
        let acct = k.proc_accounting(pid);
        assert!(acct.work >= SimDur::from_millis(50));
        // Wall time ≈ 5 * (10 + 90) ms, far more than CPU time: it slept.
        let done = k.app_done_time(AppId(9)).unwrap();
        assert!(done >= SimTime::ZERO + SimDur::from_millis(450));
    }
}
