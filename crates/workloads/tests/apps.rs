//! End-to-end runs of the four paper applications on the simulated kernel.

use desim::{SimDur, SimTime};
use simkernel::policy::FifoRoundRobin;
use simkernel::{AppId, Kernel, KernelConfig};
use uthreads::{launch, AppSpec, ThreadsConfig};
use workloads::{fft_spec, gauss_spec, matmul_spec, producer_consumer_spec, sort_spec, Presets};

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDur::from_secs(secs)
}

fn run_app(spec: AppSpec, nprocs: u32, cpus: usize, limit_s: u64) -> (f64, u64) {
    let mut k = Kernel::new(
        KernelConfig::multimax().with_cpus(cpus).without_trace(),
        Box::new(FifoRoundRobin::new()),
    );
    let app = launch(&mut k, AppId(0), ThreadsConfig::new(nprocs), spec);
    assert!(
        k.run_until_apps_done(&[AppId(0)], t(limit_s)),
        "application did not finish"
    );
    let done = k.app_done_time(AppId(0)).unwrap().as_secs_f64();
    (done, app.metrics().tasks_run)
}

#[test]
fn matmul_completes_and_scales() {
    let p = Presets::tiny();
    let (t1, n1) = run_app(matmul_spec(&p.matmul), 1, 8, 100);
    let (t8, n8) = run_app(matmul_spec(&p.matmul), 8, 8, 100);
    assert_eq!(n1, u64::from(p.matmul.tasks));
    assert_eq!(n8, u64::from(p.matmul.tasks));
    let speedup = t1 / t8;
    assert!(speedup > 5.0, "matmul speedup {speedup:.2}");
}

#[test]
fn fft_completes_and_scales() {
    let p = Presets::tiny();
    let (t1, n1) = run_app(fft_spec(&p.fft), 1, 8, 100);
    let (t8, n8) = run_app(fft_spec(&p.fft), 8, 8, 100);
    assert_eq!(n1, u64::from(p.fft.chunks));
    assert_eq!(n8, u64::from(p.fft.chunks));
    let speedup = t1 / t8;
    // Barrier-synchronized phases scale a bit worse than matmul.
    assert!(speedup > 4.0, "fft speedup {speedup:.2}");
}

#[test]
fn sort_completes_with_merge_tail() {
    let p = Presets::tiny();
    let (t1, n1) = run_app(sort_spec(&p.sort), 1, 8, 200);
    let (t8, n8) = run_app(sort_spec(&p.sort), 8, 8, 200);
    let expected_tasks = u64::from(2 * p.sort.leaves - 1);
    assert_eq!(n1, expected_tasks);
    assert_eq!(n8, expected_tasks);
    let speedup = t1 / t8;
    // The sequential merge tail caps the speedup below the others.
    assert!(speedup > 3.0, "sort speedup {speedup:.2}");
    assert!(
        speedup < 8.0,
        "sort speedup suspiciously ideal: {speedup:.2}"
    );
}

#[test]
fn gauss_completes_all_steps() {
    let p = Presets::tiny();
    let (t1, n1) = run_app(gauss_spec(&p.gauss), 1, 8, 300);
    let (t8, n8) = run_app(gauss_spec(&p.gauss), 8, 8, 300);
    // Coordinator + one task per row per step.
    let rows: u64 = (1..=u64::from(p.gauss.steps)).sum();
    assert_eq!(n1, rows + 1);
    assert_eq!(n8, rows + 1);
    let speedup = t1 / t8;
    assert!(speedup > 2.5, "gauss speedup {speedup:.2}");
}

#[test]
fn producer_consumer_completes() {
    let spec = producer_consumer_spec(4, 25, SimDur::from_millis(4), SimDur::from_millis(8));
    let (_t, n) = run_app(spec, 8, 8, 100);
    assert_eq!(n, 8);
}

#[test]
fn overcommitted_app_still_finishes() {
    // 24 workers on 4 CPUs — the paper's pathological regime.
    let p = Presets::tiny();
    let (t24, _) = run_app(matmul_spec(&p.matmul), 24, 4, 300);
    let (t4, _) = run_app(matmul_spec(&p.matmul), 4, 4, 300);
    // Overcommitment must not *help* (it mostly hurts).
    assert!(t24 >= t4 * 0.95, "t24={t24:.2}s t4={t4:.2}s");
}

#[test]
fn fork_join_runs_every_node_once() {
    // depth 3, fan 2: 7 internal/leaf spawning levels -> 8 leaves + 7
    // internal nodes = 15 tasks total.
    let spec = workloads::fork_join_spec(3, 2, SimDur::from_millis(20), SimDur::from_millis(2));
    let (_wall, tasks) = run_app(spec, 4, 4, 60);
    assert_eq!(tasks, 15);
}

#[test]
fn fork_join_scales_with_workers() {
    let mk = || workloads::fork_join_spec(4, 3, SimDur::from_millis(30), SimDur::from_millis(1));
    let (t1, n1) = run_app(mk(), 1, 8, 600);
    let (t8, n8) = run_app(mk(), 8, 8, 600);
    assert_eq!(n1, n8);
    // 81 leaves of 30 ms dominate: decent parallel speedup expected.
    let speedup = t1 / t8;
    assert!(speedup > 3.0, "fork-join speedup {speedup:.2}");
}
