//! Workspace discovery and the analyzer configuration.
//!
//! The scan scope is `crates/*/src/**/*.rs` — production source only.
//! Fixture files (under `tests/fixtures/`), the shims, and `target/`
//! are outside it by construction.

use std::fs;
use std::path::{Path, PathBuf};

use crate::model::FileModel;
use crate::{run_rules, Diagnostic};

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose atomics must be annotated (SL003) and whose counter
    /// registrations are audited (SL030).
    pub registry_crates: Vec<String>,
    /// Text of the counter-catalog document; every registered counter
    /// name must appear in it backticked.
    pub counter_doc: String,
    /// Display name of the catalog document for diagnostics.
    pub counter_doc_name: String,
    /// Files that must dispatch the wire protocol through the shared
    /// `handle_line_into` (SL050 engine parity). Suffix-matched against
    /// model paths; empty disables the engine-presence check (unit
    /// tests, single-engine fixtures).
    pub engine_paths: Vec<String>,
}

impl Config {
    /// The real configuration: `native-rt` is the registry crate, the
    /// catalog lives in DESIGN.md §11, and both server engines must
    /// route through the shared dispatcher.
    pub fn load(root: &Path) -> Config {
        Config {
            registry_crates: vec!["native-rt".to_string()],
            counter_doc: fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default(),
            counter_doc_name: "DESIGN.md §11".to_string(),
            engine_paths: vec![
                "crates/native-rt/src/uds.rs".to_string(),
                "crates/native-rt/src/reactor.rs".to_string(),
            ],
        }
    }

    /// Unit-test configuration: same registry scope, empty catalog, no
    /// engine roster.
    pub fn for_tests() -> Config {
        Config {
            registry_crates: vec!["native-rt".to_string()],
            counter_doc: String::new(),
            counter_doc_name: "DESIGN.md §11".to_string(),
            engine_paths: Vec::new(),
        }
    }
}

/// All `(path, crate_name)` pairs under `root/crates/*/src`, sorted for
/// deterministic output.
pub fn collect_files(root: &Path) -> Vec<(PathBuf, String)> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return out;
    };
    let mut crates: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    crates.sort();
    for c in crates {
        let src = c.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name = c
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut files = Vec::new();
        walk(&src, &mut files);
        files.sort();
        out.extend(files.into_iter().map(|f| (f, crate_name.clone())));
    }
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.filter_map(Result::ok) {
        let p = e.path();
        if p.is_dir() {
            walk(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Parses every in-scope file and runs all rules. Paths in diagnostics
/// are workspace-relative.
pub fn analyze_workspace(root: &Path, config: &Config) -> Vec<Diagnostic> {
    let mut models = Vec::new();
    for (path, crate_name) in collect_files(root) {
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        models.push(FileModel::parse(&rel, &crate_name, &src));
    }
    run_rules(&models, config)
}

/// Walks upward from `start` to the first directory containing a
/// `crates/` subdirectory — the workspace root, wherever the binary is
/// invoked from.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = start.to_path_buf();
    loop {
        if cur.join("crates").is_dir() && cur.join("Cargo.toml").is_file() {
            return Some(cur);
        }
        if !cur.pop() {
            return None;
        }
    }
}
