//! Intra-function control-flow model for the path-sensitive rules.
//!
//! PR 5's rules walk function bodies *linearly*: a `drop(guard)` kills
//! the guard no matter which branch it sits in, and an early `return`
//! is invisible. That is exactly where conditional bugs hide — a guard
//! dropped on one arm but held across a blocking call on the other
//! (SL021), or a counter bumped on the success path but skipped by an
//! `ERR` early-return (SL031). This module parses each body into a
//! structured region tree (sequences, branch alternatives, loops,
//! scopes, early exits — including `?`) and runs small dataflow
//! analyses over it:
//!
//! - [`may_live_blocking`]: a *may* analysis of live `MutexGuard`s —
//!   which blocking calls can execute with a guard live on **some**
//!   path. Sites the linear SL020 pass already reports are subtracted
//!   by the caller; the remainder are SL021.
//! - [`exit_increments`]: a *must* analysis for functions annotated
//!   `// sched-counter-exits(a|b): why` — every path from entry to
//!   every exit (normal end, `return`, `?`) must increment at least one
//!   of the named counter bindings, directly or through a same-crate
//!   callee that unconditionally does (one level deep, via
//!   [`always_incremented`] summaries).
//!
//! The tree is approximate where the token model is (closure bodies are
//! inlined as blocks, `break`/`continue` end their path without an exit
//! check, loop bodies are analyzed for one iteration) — conservative in
//! the direction each analysis needs, and bounded: nesting beyond
//! [`MAX_DEPTH`] degrades to a flat scan instead of recursing.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Tok;
use crate::model::{FileModel, Func};
use crate::rules::{acquire_info, is_method, is_path_call, receiver_name, BLOCKING};

/// Structural nesting bound: beyond this the builder stops adding
/// structure (events still terminate) so pathological input cannot
/// overflow the stack.
pub const MAX_DEPTH: usize = 96;

/// How a path leaves the function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// `return` — ends the path at a function exit.
    Return,
    /// `?` — *may* end the path at a function exit; the fall-through
    /// continues.
    Question,
    /// `break`/`continue` — ends the path without reaching a function
    /// exit (no exit-invariant check applies).
    LoopJump,
}

/// One atomic step on a path.
#[derive(Debug, Clone)]
pub enum Event {
    /// A `.lock()` acquisition. `id` is unique per syntactic site.
    Acquire {
        /// Site id (stable across analysis passes).
        id: usize,
        /// Receiver name of the `.lock()` call — the lock's identity.
        lock: String,
        /// `let` binding holding the guard, when there is one.
        bind: Option<String>,
        /// Unbound temporary: dies at the next statement end.
        temp: bool,
    },
    /// `drop(name)` — kills guards bound as (or locked on) `name`.
    Drop(
        /// The dropped binding or lock name.
        String,
    ),
    /// Statement boundary (`;`) — kills temporary guards.
    StmtEnd,
    /// A blocking call while the path runs.
    Blocking {
        /// The callee name (`sleep`, `write_all`, …).
        name: String,
        /// 1-based source line.
        line: u32,
    },
    /// `recv.incr()` / `recv.add(…)` — bumps counter binding `recv`.
    Incr(
        /// Receiver (counter binding) name.
        String,
    ),
    /// A call to a same-crate free function (for one-level summaries).
    Call(
        /// Callee name.
        String,
    ),
    /// A path exit.
    Exit {
        /// How the path leaves.
        kind: ExitKind,
        /// 1-based source line.
        line: u32,
    },
}

/// A region-tree node.
#[derive(Debug, Clone)]
pub enum Node {
    /// A `{ … }` scope: guards born inside die at its end.
    Block(Vec<Node>),
    /// Mutually exclusive alternatives (if/else arms, match arms). An
    /// `if` without `else` carries an empty second alternative.
    Branch(Vec<Vec<Node>>),
    /// A loop body (may run zero times).
    Loop(Vec<Node>),
    /// A leaf event.
    Event(Event),
}

/// Builds the region tree for one function body.
pub fn build(m: &FileModel, f: &Func, known_fns: &BTreeSet<String>) -> Vec<Node> {
    let mut b = Builder {
        m,
        body_start: f.body_start,
        known_fns,
        next_id: 0,
        depth: 0,
    };
    let mut i = f.body_start + 1;
    let end = f.body_end.saturating_sub(1).min(m.tokens.len());
    b.parse_seq(&mut i, end, false)
}

struct Builder<'a> {
    m: &'a FileModel,
    body_start: usize,
    known_fns: &'a BTreeSet<String>,
    next_id: usize,
    depth: usize,
}

impl Builder<'_> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.m.tokens.get(i).map(|t| &t.tok)
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.tok(i), Some(Tok::Punct(p)) if *p == c)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.tok(i) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    fn line(&self, i: usize) -> u32 {
        self.m.tokens.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Parses a statement/expression sequence from `*i` to `end`,
    /// stopping (without consuming) at a `}` closing the current scope,
    /// or — when `stop_at_comma` — at a top-level `,` (match-arm tail).
    fn parse_seq(&mut self, i: &mut usize, end: usize, stop_at_comma: bool) -> Vec<Node> {
        self.depth += 1;
        let mut nodes = Vec::new();
        let mut paren = 0isize;
        // Pending path-ender (`return`/`break`/`continue`) flushed at
        // the statement boundary so events in the tail expression still
        // precede the exit on the path.
        let mut pending: Option<(ExitKind, u32)> = None;
        let flush = |pending: &mut Option<(ExitKind, u32)>, nodes: &mut Vec<Node>| {
            if let Some((kind, line)) = pending.take() {
                nodes.push(Node::Event(Event::Exit { kind, line }));
            }
        };
        while *i < end {
            match self.tok(*i) {
                Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => {
                    paren += 1;
                    *i += 1;
                }
                Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => {
                    paren -= 1;
                    *i += 1;
                }
                Some(Tok::Punct('{')) => {
                    if self.depth > MAX_DEPTH {
                        // Degrade: skip the block flat (events inside
                        // are lost, rules go conservatively silent).
                        *i = self.m.match_brace(*i).min(end);
                        continue;
                    }
                    *i += 1;
                    let inner = self.parse_seq(i, end, false);
                    if self.punct(*i, '}') {
                        *i += 1;
                    }
                    nodes.push(Node::Block(inner));
                }
                Some(Tok::Punct('}')) => break,
                Some(Tok::Punct(',')) if stop_at_comma && paren == 0 => break,
                Some(Tok::Punct(';')) => {
                    flush(&mut pending, &mut nodes);
                    nodes.push(Node::Event(Event::StmtEnd));
                    *i += 1;
                }
                Some(Tok::Punct('?')) => {
                    nodes.push(Node::Event(Event::Exit {
                        kind: ExitKind::Question,
                        line: self.line(*i),
                    }));
                    *i += 1;
                }
                Some(Tok::Ident(w)) => {
                    let w = w.clone();
                    match w.as_str() {
                        "return" => {
                            pending = Some((ExitKind::Return, self.line(*i)));
                            *i += 1;
                        }
                        "break" | "continue" => {
                            if pending.is_none() {
                                pending = Some((ExitKind::LoopJump, self.line(*i)));
                            }
                            *i += 1;
                        }
                        "if" => {
                            *i += 1;
                            nodes.push(self.parse_if(i, end));
                        }
                        "match" => {
                            *i += 1;
                            nodes.push(self.parse_match(i, end));
                        }
                        "loop" | "while" | "for" => {
                            *i += 1;
                            nodes.push(self.parse_loop(i, end, &w));
                        }
                        _ => {
                            self.leaf(&w, i, &mut nodes);
                        }
                    }
                }
                _ => *i += 1,
            }
        }
        flush(&mut pending, &mut nodes);
        self.depth -= 1;
        nodes
    }

    /// One non-structural token: lock/drop/blocking/incr/call events.
    fn leaf(&mut self, w: &str, i: &mut usize, nodes: &mut Vec<Node>) {
        let at = *i;
        if w == "drop" && self.punct(at + 1, '(') {
            if let Some(victim) = self.ident(at + 2) {
                if self.punct(at + 3, ')') {
                    nodes.push(Node::Event(Event::Drop(victim.to_string())));
                    *i = at + 4;
                    return;
                }
            }
        }
        if w == "lock" && self.punct(at + 1, '(') && is_method(self.m, at) {
            if let Some(lock) = receiver_name(self.m, at - 1) {
                let info = acquire_info(self.m, self.body_start, at);
                let id = self.next_id;
                self.next_id += 1;
                nodes.push(Node::Event(Event::Acquire {
                    id,
                    lock,
                    bind: info.bind,
                    temp: info.temp,
                }));
                *i = at + 1;
                return;
            }
        }
        if BLOCKING.contains(&w)
            && self.punct(at + 1, '(')
            && (is_method(self.m, at) || is_path_call(self.m, at))
        {
            nodes.push(Node::Event(Event::Blocking {
                name: w.to_string(),
                line: self.line(at),
            }));
            *i = at + 1;
            return;
        }
        if (w == "incr" || w == "add") && self.punct(at + 1, '(') && is_method(self.m, at) {
            if let Some(recv) = receiver_name(self.m, at - 1) {
                nodes.push(Node::Event(Event::Incr(recv)));
                *i = at + 1;
                return;
            }
        }
        if self.punct(at + 1, '(') && !is_method(self.m, at) && self.known_fns.contains(w) {
            nodes.push(Node::Event(Event::Call(w.to_string())));
            *i = at + 1;
            return;
        }
        *i = at + 1;
    }

    /// `if [let …] cond { then } [else if … | else { … }]`. Condition
    /// events run before the branch; guards acquired in the condition
    /// (or its scrutinee temporary, edition 2021) live through the
    /// whole statement, so the result is wrapped in a scope block.
    fn parse_if(&mut self, i: &mut usize, end: usize) -> Node {
        let cond = self.parse_header(i, end);
        let mut then_alt = Vec::new();
        if self.punct(*i, '{') {
            if self.depth > MAX_DEPTH {
                *i = self.m.match_brace(*i).min(end);
            } else {
                *i += 1;
                then_alt = self.parse_seq(i, end, false);
                if self.punct(*i, '}') {
                    *i += 1;
                }
            }
        }
        let mut else_alt = Vec::new();
        if self.ident(*i) == Some("else") {
            *i += 1;
            if self.ident(*i) == Some("if") {
                *i += 1;
                else_alt.push(self.parse_if(i, end));
            } else if self.punct(*i, '{') {
                if self.depth > MAX_DEPTH {
                    *i = self.m.match_brace(*i).min(end);
                } else {
                    *i += 1;
                    else_alt = self.parse_seq(i, end, false);
                    if self.punct(*i, '}') {
                        *i += 1;
                    }
                }
            }
        }
        let mut out = cond;
        out.push(Node::Branch(vec![then_alt, else_alt]));
        Node::Block(out)
    }

    /// `match scrutinee { pat => expr, … }` → scrutinee events then a
    /// branch of one alternative per arm.
    fn parse_match(&mut self, i: &mut usize, end: usize) -> Node {
        let scrutinee = self.parse_header(i, end);
        let mut alts = Vec::new();
        if self.punct(*i, '{') {
            let close = self.m.match_brace(*i).saturating_sub(1).min(end);
            if self.depth > MAX_DEPTH {
                *i = (close + 1).min(end);
            } else {
                *i += 1;
                while *i < close {
                    // Skip the pattern (and any `if` guard) to its `=>`
                    // at bracket depth 0.
                    let mut depth = 0isize;
                    let mut found_arrow = false;
                    while *i < close {
                        match self.tok(*i) {
                            Some(Tok::Punct('('))
                            | Some(Tok::Punct('['))
                            | Some(Tok::Punct('{')) => depth += 1,
                            Some(Tok::Punct(')'))
                            | Some(Tok::Punct(']'))
                            | Some(Tok::Punct('}')) => depth -= 1,
                            Some(Tok::Punct('=')) if depth == 0 && self.punct(*i + 1, '>') => {
                                *i += 2;
                                found_arrow = true;
                                break;
                            }
                            _ => {}
                        }
                        *i += 1;
                    }
                    if !found_arrow {
                        break;
                    }
                    // Arm body: a block, or an expression up to the
                    // top-level `,`.
                    let alt = if self.punct(*i, '{') {
                        *i += 1;
                        let inner = self.parse_seq(i, end.min(close), false);
                        if self.punct(*i, '}') {
                            *i += 1;
                        }
                        inner
                    } else {
                        self.parse_seq(i, close, true)
                    };
                    alts.push(alt);
                    if self.punct(*i, ',') {
                        *i += 1;
                    }
                }
                if self.punct(*i, '}') {
                    *i += 1;
                }
            }
        }
        let mut out = scrutinee;
        if !alts.is_empty() {
            out.push(Node::Branch(alts));
        }
        Node::Block(out)
    }

    /// `loop { … }` / `while cond { … }` / `for pat in iter { … }`.
    /// `while` headers re-run every iteration, so their events live in
    /// the loop body; `for` iterator expressions run once, before it.
    fn parse_loop(&mut self, i: &mut usize, end: usize, kw: &str) -> Node {
        let header = self.parse_header(i, end);
        let mut body = Vec::new();
        if self.punct(*i, '{') {
            if self.depth > MAX_DEPTH {
                *i = self.m.match_brace(*i).min(end);
            } else {
                *i += 1;
                body = self.parse_seq(i, end, false);
                if self.punct(*i, '}') {
                    *i += 1;
                }
            }
        }
        match kw {
            "while" => {
                let mut inner = header;
                inner.append(&mut body);
                Node::Block(vec![Node::Loop(inner)])
            }
            _ => {
                let mut out = header;
                out.push(Node::Loop(body));
                Node::Block(out)
            }
        }
    }

    /// Scans a condition/scrutinee/loop header up to its body `{` at
    /// bracket depth 0 (Rust forbids bare struct literals there, so the
    /// first depth-0 `{` *is* the body), emitting leaf events found on
    /// the way. Closure blocks inside parens recurse as scopes.
    fn parse_header(&mut self, i: &mut usize, end: usize) -> Vec<Node> {
        let mut nodes = Vec::new();
        let mut paren = 0isize;
        while *i < end {
            match self.tok(*i) {
                Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => {
                    paren += 1;
                    *i += 1;
                }
                Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => {
                    paren -= 1;
                    *i += 1;
                }
                Some(Tok::Punct('{')) if paren <= 0 => break,
                Some(Tok::Punct('{')) => {
                    // Closure body inside the header.
                    if self.depth > MAX_DEPTH {
                        *i = self.m.match_brace(*i).min(end);
                        continue;
                    }
                    *i += 1;
                    let inner = self.parse_seq(i, end, false);
                    if self.punct(*i, '}') {
                        *i += 1;
                    }
                    nodes.push(Node::Block(inner));
                }
                Some(Tok::Punct('?')) => {
                    nodes.push(Node::Event(Event::Exit {
                        kind: ExitKind::Question,
                        line: self.line(*i),
                    }));
                    *i += 1;
                }
                Some(Tok::Ident(w)) => {
                    let w = w.clone();
                    self.leaf(&w, i, &mut nodes);
                }
                _ => *i += 1,
            }
        }
        // Header acquires (scrutinee temporaries) are not statement
        // temporaries — they live through the attached block.
        for n in &mut nodes {
            if let Node::Event(Event::Acquire { temp, .. }) = n {
                *temp = false;
            }
        }
        nodes
    }
}

// ---------------------------------------------------------------------
// Analyses
// ---------------------------------------------------------------------

/// A blocking call that can run with guards live on some path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlockingSite {
    /// 1-based source line of the blocking call.
    pub line: u32,
    /// The blocking callee name.
    pub name: String,
    /// Lock names possibly live at the call.
    pub locks: Vec<String>,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct LiveGuard {
    id: usize,
    lock: String,
    bind: Option<String>,
    temp: bool,
}

/// May-analysis: every blocking call together with the guards that can
/// be live there on at least one path.
pub fn may_live_blocking(nodes: &[Node]) -> Vec<BlockingSite> {
    let mut sites = BTreeSet::new();
    walk_may(nodes, &BTreeSet::new(), &mut sites);
    sites.into_iter().collect()
}

struct MayOut {
    live: BTreeSet<LiveGuard>,
    ended: bool,
}

fn walk_may(
    nodes: &[Node],
    live_in: &BTreeSet<LiveGuard>,
    sites: &mut BTreeSet<BlockingSite>,
) -> MayOut {
    let mut live = live_in.clone();
    for n in nodes {
        match n {
            Node::Event(ev) => match ev {
                Event::Acquire {
                    id,
                    lock,
                    bind,
                    temp,
                } => {
                    live.insert(LiveGuard {
                        id: *id,
                        lock: lock.clone(),
                        bind: bind.clone(),
                        temp: *temp,
                    });
                }
                Event::Drop(name) => {
                    live.retain(|g| g.bind.as_deref() != Some(name.as_str()) && g.lock != *name);
                }
                Event::StmtEnd => live.retain(|g| !g.temp),
                Event::Blocking { name, line } => {
                    if !live.is_empty() {
                        let mut locks: Vec<String> = live.iter().map(|g| g.lock.clone()).collect();
                        locks.dedup();
                        sites.insert(BlockingSite {
                            line: *line,
                            name: name.clone(),
                            locks,
                        });
                    }
                }
                Event::Exit { kind, .. } => {
                    if !matches!(kind, ExitKind::Question) {
                        return MayOut { live, ended: true };
                    }
                }
                Event::Incr(_) | Event::Call(_) => {}
            },
            Node::Block(inner) => {
                let born_outside: BTreeSet<usize> = live.iter().map(|g| g.id).collect();
                let r = walk_may(inner, &live, sites);
                if r.ended {
                    return MayOut { live, ended: true };
                }
                live = r
                    .live
                    .into_iter()
                    .filter(|g| born_outside.contains(&g.id))
                    .collect();
            }
            Node::Branch(alts) => {
                let mut merged: BTreeSet<LiveGuard> = BTreeSet::new();
                let mut any_continues = false;
                for alt in alts {
                    let born_outside: BTreeSet<usize> = live.iter().map(|g| g.id).collect();
                    let r = walk_may(alt, &live, sites);
                    if !r.ended {
                        any_continues = true;
                        merged.extend(r.live.into_iter().filter(|g| born_outside.contains(&g.id)));
                    }
                }
                if !any_continues {
                    return MayOut { live, ended: true };
                }
                live = merged;
            }
            Node::Loop(body) => {
                // Guards born in the body die at iteration end, and the
                // body may run zero times: liveness after the loop is
                // the entry set. One walk records the body's sites.
                let _ = walk_may(body, &live, sites);
            }
        }
    }
    MayOut { live, ended: false }
}

/// One missed-increment exit for SL031.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MissedExit {
    /// 1-based line of the exit (`return`, `?`), or the function line
    /// for a fall-off-the-end path.
    pub line: u32,
    /// The exit flavor, for the message.
    pub what: &'static str,
}

/// Must-analysis for `sched-counter-exits(a|b)`: exits reachable with
/// none of `targets` incremented. `summaries` maps same-crate function
/// names to the counter bindings they increment on every path
/// ([`always_incremented`]); a call to such a function counts.
pub fn exit_increments(
    nodes: &[Node],
    fn_line: u32,
    targets: &BTreeSet<String>,
    summaries: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<MissedExit> {
    let mut missed = BTreeSet::new();
    let out = walk_must(nodes, false, targets, summaries, &mut missed);
    if !out.ended && !out.done {
        missed.insert(MissedExit {
            line: fn_line,
            what: "falls off the end of the function",
        });
    }
    missed.into_iter().collect()
}

struct MustOut {
    /// Some target counter has been incremented on every path reaching
    /// this point.
    done: bool,
    ended: bool,
}

fn walk_must(
    nodes: &[Node],
    done_in: bool,
    targets: &BTreeSet<String>,
    summaries: &BTreeMap<String, BTreeSet<String>>,
    missed: &mut BTreeSet<MissedExit>,
) -> MustOut {
    let mut done = done_in;
    for n in nodes {
        match n {
            Node::Event(ev) => match ev {
                Event::Incr(recv) if targets.contains(recv) => done = true,
                Event::Call(callee) => {
                    if let Some(summary) = summaries.get(callee) {
                        if summary.iter().any(|c| targets.contains(c)) {
                            done = true;
                        }
                    }
                }
                Event::Exit { kind, line } => match kind {
                    ExitKind::Return => {
                        if !done {
                            missed.insert(MissedExit {
                                line: *line,
                                what: "returns",
                            });
                        }
                        return MustOut { done, ended: true };
                    }
                    ExitKind::Question => {
                        if !done {
                            missed.insert(MissedExit {
                                line: *line,
                                what: "exits via `?`",
                            });
                        }
                    }
                    ExitKind::LoopJump => return MustOut { done, ended: true },
                },
                _ => {}
            },
            Node::Block(inner) => {
                let r = walk_must(inner, done, targets, summaries, missed);
                if r.ended {
                    return r;
                }
                done = r.done;
            }
            Node::Branch(alts) => {
                let mut all_done = true;
                let mut any_continues = false;
                for alt in alts {
                    let r = walk_must(alt, done, targets, summaries, missed);
                    if !r.ended {
                        any_continues = true;
                        all_done &= r.done;
                    }
                }
                if !any_continues {
                    return MustOut { done, ended: true };
                }
                done = all_done;
            }
            Node::Loop(body) => {
                // Zero iterations possible: the post-loop state is the
                // entry state. One walk (entry state) over-approximates
                // the reachable in-body exit misses.
                let _ = walk_must(body, done, targets, summaries, missed);
            }
        }
    }
    MustOut { done, ended: false }
}

/// The counter bindings a function increments on **every** path to
/// **every** exit — the one-level callee summary `exit_increments`
/// consults. No call resolution (summaries do not nest).
pub fn always_incremented(nodes: &[Node]) -> BTreeSet<String> {
    let mut exits: Vec<BTreeSet<String>> = Vec::new();
    let out = walk_sum(nodes, BTreeSet::new(), &mut exits);
    if !out.1 {
        exits.push(out.0);
    }
    let mut iter = exits.into_iter();
    let Some(first) = iter.next() else {
        return BTreeSet::new();
    };
    iter.fold(first, |acc, s| acc.intersection(&s).cloned().collect())
}

fn walk_sum(
    nodes: &[Node],
    mut incr: BTreeSet<String>,
    exits: &mut Vec<BTreeSet<String>>,
) -> (BTreeSet<String>, bool) {
    for n in nodes {
        match n {
            Node::Event(ev) => match ev {
                Event::Incr(recv) => {
                    incr.insert(recv.clone());
                }
                Event::Exit { kind, .. } => match kind {
                    ExitKind::Return => {
                        exits.push(incr.clone());
                        return (incr, true);
                    }
                    ExitKind::Question => exits.push(incr.clone()),
                    ExitKind::LoopJump => return (incr, true),
                },
                _ => {}
            },
            Node::Block(inner) => {
                let r = walk_sum(inner, incr, exits);
                if r.1 {
                    return r;
                }
                incr = r.0;
            }
            Node::Branch(alts) => {
                let mut merged: Option<BTreeSet<String>> = None;
                let mut any_continues = false;
                for alt in alts {
                    let r = walk_sum(alt, incr.clone(), exits);
                    if !r.1 {
                        any_continues = true;
                        merged = Some(match merged {
                            None => r.0,
                            Some(prev) => prev.intersection(&r.0).cloned().collect(),
                        });
                    }
                }
                if !any_continues {
                    return (incr, true);
                }
                incr = merged.unwrap_or(incr);
            }
            Node::Loop(body) => {
                let mut inner_exits = Vec::new();
                let _ = walk_sum(body, incr.clone(), &mut inner_exits);
                exits.append(&mut inner_exits);
            }
        }
    }
    (incr, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> (FileModel, BTreeSet<String>) {
        let m = FileModel::parse("f.rs", "c", src);
        let known: BTreeSet<String> = m.functions.iter().map(|f| f.name.clone()).collect();
        (m, known)
    }

    fn blocking_lines(src: &str, fn_name: &str) -> Vec<u32> {
        let (m, known) = parse(src);
        let f = m
            .functions
            .iter()
            .find(|f| f.name == fn_name)
            .expect("fn present");
        let tree = build(&m, f, &known);
        may_live_blocking(&tree)
            .into_iter()
            .map(|s| s.line)
            .collect()
    }

    #[test]
    fn conditional_drop_leaves_guard_live_on_the_other_path() {
        let src = r#"
fn f(s: &S, cond: bool) {
    let g = s.mu.lock();
    if cond { drop(g); }
    thread::sleep(D);
}
"#;
        assert_eq!(blocking_lines(src, "f"), vec![5]);
    }

    #[test]
    fn unconditional_drop_and_scope_end_clear() {
        let src = r#"
fn f(s: &S) {
    { let g = s.mu.lock(); }
    let h = s.mu.lock();
    drop(h);
    thread::sleep(D);
}
"#;
        assert!(blocking_lines(src, "f").is_empty());
    }

    #[test]
    fn match_arm_drop_is_path_sensitive() {
        let src = r#"
fn f(s: &S, x: u32) {
    let g = s.mu.lock();
    match x {
        0 => drop(g),
        _ => {}
    }
    thread::sleep(D);
}
"#;
        assert_eq!(blocking_lines(src, "f"), vec![8]);
    }

    #[test]
    fn early_return_on_the_holding_path_suppresses() {
        let src = r#"
fn f(s: &S, cond: bool) {
    let g = s.mu.lock();
    if cond { return; }
    drop(g);
    thread::sleep(D);
}
"#;
        assert!(blocking_lines(src, "f").is_empty());
    }

    #[test]
    fn while_header_guard_is_live_in_the_body() {
        let src = r#"
fn f(s: &S) {
    while s.q.lock().pending() {
        thread::sleep(D);
    }
    thread::sleep(E);
}
"#;
        assert_eq!(blocking_lines(src, "f"), vec![4]);
    }

    fn missed(src: &str, fn_name: &str) -> Vec<MissedExit> {
        let (m, known) = parse(src);
        let mut summaries = BTreeMap::new();
        for f in &m.functions {
            let tree = build(&m, f, &known);
            summaries.insert(f.name.clone(), always_incremented(&tree));
        }
        let f = m
            .functions
            .iter()
            .find(|f| f.name == fn_name)
            .expect("fn present");
        let tree = build(&m, f, &known);
        let targets = f
            .counter_exits
            .clone()
            .expect("annotated")
            .into_iter()
            .collect();
        exit_increments(&tree, f.line, &targets, &summaries)
    }

    #[test]
    fn early_return_missing_increment_is_caught() {
        let src = r#"
// sched-counter-exits(served): every reply accounts one serve.
fn f(s: &S, bad: bool) {
    if bad { return; }
    s.served.incr();
}
"#;
        let m = missed(src, "f");
        assert_eq!(m.len(), 1, "{m:?}");
        assert_eq!(m[0].line, 4);
    }

    #[test]
    fn all_paths_incremented_including_callee_summary_is_clean() {
        let src = r#"
fn reject(s: &S) { s.served.incr(); }
// sched-counter-exits(served|errors): both arms account.
fn f(s: &S, bad: bool) {
    if bad {
        reject(s);
        return;
    }
    s.errors.incr();
}
"#;
        assert!(missed(src, "f").is_empty());
    }

    #[test]
    fn question_mark_exit_before_increment_is_caught() {
        let src = r#"
// sched-counter-exits(polls): refreshed per poll.
fn f(s: &S) -> io::Result<()> {
    let t = s.read()?;
    s.polls.incr();
    Ok(())
}
"#;
        let m = missed(src, "f");
        assert_eq!(m.len(), 1, "{m:?}");
        assert_eq!(m[0].line, 4);
    }

    #[test]
    fn match_arm_without_increment_falls_off_the_end() {
        let src = r#"
// sched-counter-exits(served): every arm accounts.
fn f(s: &S, x: u32) {
    match x {
        0 => s.served.incr(),
        _ => {}
    }
}
"#;
        let m = missed(src, "f");
        assert_eq!(m.len(), 1, "{m:?}");
        assert_eq!(m[0].line, 3);
    }
}
