//! A minimal Rust lexer: just enough token structure for the lint rules.
//!
//! The offline build environment has no `syn`, so — like the API shims
//! under `shims/` — the analyzer carries its own substitute. The lexer
//! understands exactly what the rules need to be sound against real
//! source text: comments (line, nested block, doc), string/char/byte/raw
//! literals, lifetimes vs char literals, raw identifiers, and numbers.
//! Everything else is single-character punctuation. Higher layers match
//! token *patterns* (e.g. `.lock()`, `Ordering::Relaxed`) instead of
//! building an AST; the known blind spots are documented in DESIGN.md
//! §11.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers are stored without `r#`).
    Ident(String),
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// String, byte-string, raw-string, char, or byte literal, with
    /// its raw text (quotes included). Literal contents are never
    /// treated as code; the counters rule reads registered names out of
    /// them.
    Literal(String),
    /// Numeric literal.
    Num,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A comment (line, block, or doc), kept separately from the token
/// stream for the annotation and `SAFETY:` rules.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub start_line: u32,
    /// 1-based line the comment ends on.
    pub end_line: u32,
    /// Raw text including the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the token stream and the comment list, both in source
/// order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens.
    pub tokens: Vec<Token>,
    /// All comments.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated constructs consume to end-of-file rather
/// than erroring: the analyzer must never be the thing that fails on
/// code rustc accepts (and on code it doesn't, garbage tokens only make
/// rules conservatively silent).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    // Counts newlines in b[from..to] into `line`.
    fn advance_lines(b: &[char], from: usize, to: usize, line: &mut u32) {
        *line += b[from..to].iter().filter(|&&c| c == '\n').count() as u32;
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (also doc `///` and `//!`).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                start_line: line,
                end_line: line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                start_line,
                end_line: line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Raw strings and raw/byte prefixes: r"...", r#"..."#, br"...",
        // b"...", b'...'. Checked before plain identifiers.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let mut j = i;
            let mut _byte = false;
            if b[j] == 'b' {
                _byte = true;
                j += 1;
            }
            let raw = j < n && b[j] == 'r';
            if raw {
                j += 1;
            }
            let mut hashes = 0usize;
            while raw && j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' && (raw || b[i] == 'b') {
                let tok_line = line;
                if raw {
                    // Scan to `"` followed by `hashes` hashes.
                    j += 1;
                    'raw: while j < n {
                        if b[j] == '"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        if b[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                } else {
                    // b"..." with escapes.
                    j += 1;
                    while j < n {
                        if b[j] == '\\' {
                            j = (j + 2).min(n);
                            continue;
                        }
                        if b[j] == '"' {
                            j += 1;
                            break;
                        }
                        if b[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Literal(b[i..j].iter().collect()),
                    line: tok_line,
                });
                i = j;
                continue;
            }
            if b[i] == 'b' && i + 1 < n && b[i + 1] == '\'' {
                // Byte literal b'x'.
                let tok_line = line;
                let mut j = i + 2;
                while j < n {
                    if b[j] == '\\' {
                        j = (j + 2).min(n);
                        continue;
                    }
                    if b[j] == '\'' {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Literal(b[i..j].iter().collect()),
                    line: tok_line,
                });
                i = j;
                continue;
            }
            if raw && j < n && is_ident_start(b[j]) && hashes == 0 && b[i] == 'r' && b[i + 1] == '#'
            {
                // Raw identifier r#ident.
                let mut k = i + 2;
                while k < n && is_ident_continue(b[k]) {
                    k += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(b[i + 2..k].iter().collect()),
                    line,
                });
                i = k;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // String literal.
        if c == '"' {
            let tok_line = line;
            let start = i;
            i += 1;
            while i < n {
                if b[i] == '\\' {
                    // A trailing backslash at EOF must not run past the
                    // buffer (unterminated literal in garbage input).
                    i = (i + 2).min(n);
                    continue;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Literal(b[start..i].iter().collect()),
                line: tok_line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            // 'a / 'static → lifetime; '\n' / 'x' → char literal. A
            // lifetime is `'` + ident-start not followed by a closing
            // quote right after one ident char ('x' is a char, 'xy is a
            // lifetime... actually 'x' has the trailing quote).
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal.
                let start = i;
                i += 2; // skip '\ and the escape head
                while i < n && b[i] != '\'' {
                    i += 1;
                }
                i = (i + 1).min(n);
                advance_lines(&b, start, i, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Literal(b[start..i].iter().collect()),
                    line,
                });
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' {
                // 'x'
                out.tokens.push(Token {
                    tok: Tok::Literal(b[i..i + 3].iter().collect()),
                    line,
                });
                i += 3;
                continue;
            }
            // Lifetime: consume ident chars.
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Lifetime,
                line,
            });
            i = j.max(i + 1);
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Ident(b[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Number: digits plus alphanumerics/underscores (covers hex,
        // suffixes), one optional fractional part. `0..n` must not eat
        // the range dots.
        if c.is_ascii_digit() {
            let tok_line = line;
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
            out.tokens.push(Token {
                tok: Tok::Num,
                line: tok_line,
            });
            continue;
        }
        // Everything else: single-char punctuation.
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // unsafe in a comment
            let s = "unsafe { lock() }";
            let r = r#"Ordering::Relaxed"#;
            /* nested /* unsafe */ still comment */
            let c = 'u';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"Ordering".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Literal(_)))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\nc";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let src = "for i in 0..n { x[i] = 1_000; }";
        let lexed = lex(src);
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn byte_and_raw_prefixes_still_allow_plain_idents() {
        let ids = idents("let b = buffer; let r = rings;");
        assert!(ids.contains(&"buffer".to_string()));
        assert!(ids.contains(&"rings".to_string()));
    }
}
