//! The per-file structural model the rules run against.
//!
//! One pass over the token stream extracts: function bodies, annotated
//! atomic declarations (`// sched-atomic(<category>): <why>`), counter
//! registration sites, and the token ranges of `mod tests { … }` blocks
//! (excluded from the concurrency rules — test-local atomics and locks
//! follow different conventions and would drown the signal).

use crate::lexer::{lex, Comment, Lexed, Tok, Token};

/// How an atomic participates in synchronization — declared next to the
/// atomic itself with a `// sched-atomic(<category>): <justification>`
/// comment. The ordering rules key off this registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicCategory {
    /// Publishes data read by another thread: stores/RMWs/loads must
    /// carry at least Release/Acquire; `SeqCst` is flagged as
    /// over-strong (AcqRel suffices for a pairwise hand-off).
    Handoff,
    /// Part of a Dekker-style store-load protocol: every operation must
    /// be `SeqCst` (anything weaker reorders the handshake).
    SeqCst,
    /// Pure statistic or hint: `Relaxed` by design, and anything
    /// stronger is flagged (hidden cost on a hot path).
    Relaxed,
    /// Orderings proven elsewhere (loom model, literature); the
    /// analyzer does not second-guess them. The annotation's
    /// justification should say where the proof lives.
    Verified,
}

impl AtomicCategory {
    /// Parses the annotation keyword.
    pub fn parse(s: &str) -> Option<AtomicCategory> {
        match s {
            "handoff" => Some(AtomicCategory::Handoff),
            "seqcst" => Some(AtomicCategory::SeqCst),
            "relaxed" => Some(AtomicCategory::Relaxed),
            "verified" => Some(AtomicCategory::Verified),
            _ => None,
        }
    }

    /// The annotation keyword.
    pub fn name(self) -> &'static str {
        match self {
            AtomicCategory::Handoff => "handoff",
            AtomicCategory::SeqCst => "seqcst",
            AtomicCategory::Relaxed => "relaxed",
            AtomicCategory::Verified => "verified",
        }
    }
}

/// A declared atomic field/static and its annotation, if any.
#[derive(Debug, Clone)]
pub struct AtomicDecl {
    /// Field or static name (the key usages are matched by).
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// Parsed `sched-atomic` category; `None` when unannotated.
    pub category: Option<AtomicCategory>,
}

/// One `registry.counter(…)` registration site.
#[derive(Debug, Clone)]
pub struct CounterReg {
    /// Counter names this site registers. A literal site has one; a
    /// dynamic site (`&format!`) lists the names from its
    /// `// sched-counters: a b c` annotation, or is empty when the
    /// annotation is missing (itself a finding).
    pub names: Vec<String>,
    /// 1-based line of the call.
    pub line: u32,
    /// The binding the handle is stored into (struct-literal field or
    /// `let` name), when the increment happens elsewhere.
    pub binding: Option<String>,
    /// The registration is immediately followed by `.incr()`/`.add(`.
    pub inline_incr: bool,
    /// The site used a non-literal name and carried no `sched-counters`
    /// annotation.
    pub unannotated_dynamic: bool,
}

/// A function (or method) body.
#[derive(Debug, Clone)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Token index of the opening `{`.
    pub body_start: usize,
    /// Token index one past the closing `}`.
    pub body_end: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `// sched-counter-exits(a|b): why` annotation above the function:
    /// a claim that every exit path increments at least one of the named
    /// counter bindings, verified path-sensitively by SL031.
    pub counter_exits: Option<Vec<String>>,
}

/// The parsed model of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Display path (workspace-relative).
    pub path: String,
    /// Owning crate (directory under `crates/`).
    pub crate_name: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Comment list.
    pub comments: Vec<Comment>,
    /// Functions with bodies, in source order.
    pub functions: Vec<Func>,
    /// Annotated/unannotated atomic declarations.
    pub atomic_decls: Vec<AtomicDecl>,
    /// Counter registration sites.
    pub counter_regs: Vec<CounterReg>,
    /// Token ranges (start..end) inside `mod tests { … }` blocks.
    pub test_ranges: Vec<(usize, usize)>,
}

const ATOMIC_TYPES: &[&str] = &[
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU64",
    "AtomicI64",
    "AtomicU32",
    "AtomicI32",
    "AtomicU8",
    "AtomicI8",
    "AtomicU16",
    "AtomicI16",
    "AtomicBool",
    "AtomicPtr",
];

impl FileModel {
    /// Lexes and models one file.
    pub fn parse(path: &str, crate_name: &str, src: &str) -> FileModel {
        let Lexed { tokens, comments } = lex(src);
        let mut m = FileModel {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            tokens,
            comments,
            functions: Vec::new(),
            atomic_decls: Vec::new(),
            counter_regs: Vec::new(),
            test_ranges: Vec::new(),
        };
        m.find_test_ranges();
        m.find_functions();
        m.find_atomic_decls();
        m.find_counter_regs();
        m
    }

    /// True when token index `i` is inside a `mod tests` block.
    pub fn in_tests(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    /// Finds the matching `}` for the `{` at `open`, returning the index
    /// one past it.
    pub fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0isize;
        let mut i = open;
        while i < self.tokens.len() {
            match self.tokens[i].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.tokens.len()
    }

    fn find_test_ranges(&mut self) {
        let mut i = 0;
        while i + 2 < self.tokens.len() {
            if self.ident_at(i) == Some("mod")
                && matches!(self.ident_at(i + 1), Some(name) if name == "tests" || name.ends_with("_tests"))
                && self.punct_at(i + 2, '{')
            {
                let end = self.match_brace(i + 2);
                self.test_ranges.push((i, end));
                i = end;
                continue;
            }
            i += 1;
        }
    }

    fn find_functions(&mut self) {
        let mut funcs = Vec::new();
        let mut i = 0;
        let n = self.tokens.len();
        while i < n {
            if self.ident_at(i) == Some("fn") {
                let Some(name) = self.ident_at(i + 1).map(str::to_string) else {
                    i += 1;
                    continue;
                };
                let line = self.tokens[i].line;
                // Scan to the body `{`, skipping the parameter list,
                // return type, and where clause. `->` must not be read
                // as closing an angle bracket; a `;` first means a
                // bodyless declaration (trait method, extern).
                let mut j = i + 2;
                let mut paren = 0isize;
                let mut angle = 0isize;
                let mut found = None;
                while j < n {
                    match self.tokens[j].tok {
                        Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                        Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>')
                            if !self.punct_at(j - 1, '-') && !self.punct_at(j - 1, '=') =>
                        {
                            angle -= 1;
                        }
                        Tok::Punct(';') if paren == 0 => break,
                        Tok::Punct('{') if paren == 0 && angle <= 0 => {
                            found = Some(j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = found {
                    let end = self.match_brace(open);
                    funcs.push(Func {
                        name,
                        body_start: open,
                        body_end: end,
                        line,
                        counter_exits: self.counter_exits_annotation(line),
                    });
                    // Functions nest (closures are part of the body;
                    // nested `fn` items are rare) — continue the scan
                    // right after the header, not the body, so nested
                    // named fns are modeled too.
                    i = open + 1;
                    continue;
                }
            }
            i += 1;
        }
        self.functions = funcs;
    }

    /// The `// sched-counter-exits(a|b): why` annotation covering
    /// `line` (the `fn` keyword's line): on that line or in the
    /// contiguous comment block directly above it.
    fn counter_exits_annotation(&self, line: u32) -> Option<Vec<String>> {
        let mut probe = line;
        loop {
            for c in &self.comments {
                if c.end_line >= probe && c.start_line <= probe {
                    // The annotation must open the comment (after the
                    // `//`/`///`/`//!` marker) — prose *mentioning* the
                    // annotation syntax in rustdoc is not a claim.
                    let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
                    if let Some(rest) = body.strip_prefix("sched-counter-exits(") {
                        let end = rest.find(')')?;
                        let names: Vec<String> = rest[..end]
                            .split('|')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect();
                        return (!names.is_empty()).then_some(names);
                    }
                }
            }
            let above = probe.saturating_sub(1);
            if above == 0 {
                return None;
            }
            let covered = self
                .comments
                .iter()
                .any(|c| c.start_line <= above && c.end_line >= above);
            let has_code = self.tokens.iter().any(|t| t.line == above);
            if !covered || has_code {
                return None;
            }
            probe = above;
        }
    }

    /// The `sched-atomic(...)` annotation covering `line`, if any: on
    /// the declaration line itself or in the contiguous comment block
    /// directly above it.
    fn atomic_annotation(&self, line: u32) -> Option<AtomicCategory> {
        let mut probe = line;
        // Same line, then walk up through contiguous comment lines.
        loop {
            for c in &self.comments {
                if c.end_line >= probe.saturating_sub(0) && c.start_line <= probe {
                    if let Some(cat) = parse_sched_atomic(&c.text) {
                        return Some(cat);
                    }
                }
            }
            // Walk up only through comment-only lines: a trailing
            // comment on the previous *declaration's* line covers that
            // declaration, not this one.
            let above = probe.saturating_sub(1);
            if above == 0 {
                return None;
            }
            let covered = self
                .comments
                .iter()
                .any(|c| c.start_line <= above && c.end_line >= above);
            let has_code = self.tokens.iter().any(|t| t.line == above);
            if !covered || has_code {
                return None;
            }
            probe = above;
        }
    }

    fn find_atomic_decls(&mut self) {
        let n = self.tokens.len();
        let mut decls = Vec::new();
        for i in 0..n {
            let Some(ty) = self.ident_at(i) else { continue };
            if !ATOMIC_TYPES.contains(&ty) {
                continue;
            }
            // `AtomicUsize::new(…)` is a constructor use, not a
            // declaration.
            if self.punct_at(i + 1, ':') && self.punct_at(i + 2, ':') {
                continue;
            }
            if self.in_tests(i) {
                continue;
            }
            // Walk back over type wrappers (`Arc<`, `Box<[`, `[`, …) to
            // the `name :` of a field/static/let declaration.
            let mut j = i;
            let mut ok = false;
            while j > 0 {
                j -= 1;
                match &self.tokens[j].tok {
                    Tok::Punct('<') | Tok::Punct('[') | Tok::Punct('(') => continue,
                    Tok::Ident(w)
                        if ["Arc", "Box", "Option", "Vec", "Cell", "UnsafeCell"]
                            .contains(&w.as_str()) =>
                    {
                        continue
                    }
                    Tok::Punct(':') => {
                        // Skip `::` paths like `atomic::AtomicUsize`.
                        if j > 0 && self.punct_at(j - 1, ':') {
                            j -= 1;
                            continue;
                        }
                        ok = true;
                        break;
                    }
                    _ => break,
                }
            }
            if !ok || j == 0 {
                continue;
            }
            let Some(name) = self.ident_at(j - 1).map(str::to_string) else {
                continue;
            };
            let line = self.tokens[i].line;
            decls.push(AtomicDecl {
                name,
                line,
                category: self.atomic_annotation(line),
            });
        }
        self.atomic_decls = decls;
    }

    /// The `// sched-counters: a b c` annotation near `line`.
    fn counters_annotation(&self, line: u32) -> Option<Vec<String>> {
        for c in &self.comments {
            if c.end_line + 4 >= line && c.start_line <= line {
                if let Some(pos) = c.text.find("sched-counters:") {
                    let rest = &c.text[pos + "sched-counters:".len()..];
                    let names: Vec<String> = rest
                        .split_whitespace()
                        .map(str::to_string)
                        .take_while(|w| !w.starts_with("//"))
                        .collect();
                    if !names.is_empty() {
                        return Some(names);
                    }
                }
            }
        }
        None
    }

    fn find_counter_regs(&mut self) {
        let n = self.tokens.len();
        let mut regs = Vec::new();
        for i in 0..n {
            if self.ident_at(i) != Some("counter") || !self.punct_at(i - 1, '.') {
                continue;
            }
            if !self.punct_at(i + 1, '(') {
                continue;
            }
            if self.in_tests(i) {
                continue;
            }
            let line = self.tokens[i].line;
            // Literal name or dynamic?
            let mut names = Vec::new();
            let mut unannotated_dynamic = false;
            if let Some(Tok::Literal(text)) = self.tokens.get(i + 2).map(|t| &t.tok) {
                names.push(text.trim_matches('"').to_string());
            } else {
                match self.counters_annotation(line) {
                    Some(list) => names = list,
                    None => unannotated_dynamic = true,
                }
            }
            // Find the end of the call to detect `.incr()` / `.add(`.
            let close = {
                let mut depth = 0isize;
                let mut k = i + 1;
                loop {
                    match self.tokens.get(k).map(|t| &t.tok) {
                        Some(Tok::Punct('(')) => depth += 1,
                        Some(Tok::Punct(')')) => {
                            depth -= 1;
                            if depth == 0 {
                                break k;
                            }
                        }
                        None => break k,
                        _ => {}
                    }
                    k += 1;
                }
            };
            let inline_incr = self.punct_at(close + 1, '.')
                && matches!(self.ident_at(close + 2), Some("incr") | Some("add"));
            // Binding: `name : registry . counter (` (struct literal) or
            // `let name = registry . counter (` / `let name = … from_fn`.
            let mut binding = None;
            // registry.counter → tokens i-2 = registry ident, i-3 = ':' or '='
            if let Some(Tok::Ident(_)) = self.tokens.get(i.wrapping_sub(2)).map(|t| &t.tok) {
                let k = i - 3;
                if self.punct_at(k, ':') && !self.punct_at(k.wrapping_sub(1), ':') {
                    binding = self.ident_at(k - 1).map(str::to_string);
                } else if self.punct_at(k, '=') {
                    // let NAME = registry.counter(...)
                    let mut back = k;
                    while back > 0 {
                        back -= 1;
                        if let Some(Tok::Ident(w)) = self.tokens.get(back).map(|t| &t.tok) {
                            if w == "let" {
                                break;
                            }
                            if binding.is_none() {
                                binding = Some(w.clone());
                            }
                        } else {
                            break;
                        }
                    }
                }
            }
            regs.push(CounterReg {
                names,
                line,
                binding,
                inline_incr,
                unannotated_dynamic,
            });
        }
        self.counter_regs = regs;
    }
}

fn parse_sched_atomic(text: &str) -> Option<AtomicCategory> {
    let pos = text.find("sched-atomic(")?;
    let rest = &text[pos + "sched-atomic(".len()..];
    let end = rest.find(')')?;
    AtomicCategory::parse(rest[..end].trim())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_annotated_atomic_field() {
        let src = r#"
struct S {
    /// Jobs outstanding.
    // sched-atomic(handoff): pairs with wait_idle's Acquire load.
    outstanding: AtomicUsize,
    plain: AtomicBool,
}
fn mk() { let x = AtomicUsize::new(0); }
"#;
        let m = FileModel::parse("s.rs", "c", src);
        assert_eq!(m.atomic_decls.len(), 2);
        assert_eq!(m.atomic_decls[0].name, "outstanding");
        assert_eq!(m.atomic_decls[0].category, Some(AtomicCategory::Handoff));
        assert_eq!(m.atomic_decls[1].name, "plain");
        assert_eq!(m.atomic_decls[1].category, None);
    }

    #[test]
    fn wrapped_and_static_decls_are_found() {
        let src = r#"
static SHUTDOWN: AtomicBool = AtomicBool::new(false); // sched-atomic(relaxed): flag only.
struct S {
    flags: Box<[AtomicBool]>, // sched-atomic(handoff): drained-deque publication.
    stop: Arc<AtomicBool>,
}
"#;
        let m = FileModel::parse("s.rs", "c", src);
        let names: Vec<&str> = m.atomic_decls.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["SHUTDOWN", "flags", "stop"]);
        assert_eq!(m.atomic_decls[0].category, Some(AtomicCategory::Relaxed));
        assert_eq!(m.atomic_decls[1].category, Some(AtomicCategory::Handoff));
        assert_eq!(m.atomic_decls[2].category, None);
    }

    #[test]
    fn functions_and_test_mods_are_delimited() {
        let src = r#"
fn alpha(x: usize) -> Vec<u32> { x + 1 }
impl Foo {
    fn beta(&self) where Self: Sized { self.go() }
}
#[cfg(test)]
mod tests {
    fn gamma() {}
}
"#;
        let m = FileModel::parse("s.rs", "c", src);
        let names: Vec<&str> = m.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
        let gamma = &m.functions[2];
        assert!(m.in_tests(gamma.body_start));
        let beta = &m.functions[1];
        assert!(!m.in_tests(beta.body_start));
    }
}
