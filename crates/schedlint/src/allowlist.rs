//! The checked-in `schedlint.toml` allowlist.
//!
//! Findings the team has triaged and accepted live here — each entry
//! names the rule, scopes itself as tightly as practical (`path` suffix,
//! `contains` message substring), and carries a mandatory
//! `justification`. Unused entries are themselves failures: when the
//! code an entry excused is fixed or deleted, the entry must go too,
//! otherwise the allowlist decays into a blanket mute.
//!
//! The file is parsed by a deliberately tiny TOML-subset reader (the
//! offline environment has no `toml` crate): `[[allow]]` tables of
//! `key = "string"` pairs, `#` comments. That subset is all the schema
//! needs.

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule ID this entry excuses (e.g. `"SL020"`).
    pub rule: String,
    /// Path-suffix filter; `None` matches any file.
    pub path: Option<String>,
    /// Message-substring filter; `None` matches any message.
    pub contains: Option<String>,
    /// Why the finding is acceptable. Mandatory and non-empty.
    pub justification: String,
    /// Optional `YYYY-MM-DD` expiry: the entry is valid *through* this
    /// date and fails the run starting the day after. Keeps
    /// suppressions from fossilizing — every long-lived exception must
    /// be re-triaged on a schedule.
    pub expires: Option<String>,
    /// 1-based line of the `[[allow]]` header, for error reporting.
    pub line: u32,
}

impl AllowEntry {
    /// Does this entry excuse `d`?
    pub fn matches(&self, d: &crate::Diagnostic) -> bool {
        d.rule == self.rule
            && self.path.as_deref().map_or(true, |p| d.path.ends_with(p))
            && self
                .contains
                .as_deref()
                .map_or(true, |c| d.message.contains(c))
    }

    /// Compact description for "unused entry" reports.
    pub fn describe(&self) -> String {
        let mut s = format!("rule {}", self.rule);
        if let Some(p) = &self.path {
            s.push_str(&format!(", path ~ {p}"));
        }
        if let Some(c) = &self.contains {
            s.push_str(&format!(", message ~ {c:?}"));
        }
        if let Some(e) = &self.expires {
            s.push_str(&format!(", expires {e}"));
        }
        s
    }
}

/// Is `date` a plausible `YYYY-MM-DD`? Shape and range checks only —
/// enough to make lexicographic comparison against another such date
/// meaningful.
fn valid_date(date: &str) -> bool {
    let b = date.as_bytes();
    if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
        return false;
    }
    let digits = |r: std::ops::Range<usize>| date[r].chars().all(|c| c.is_ascii_digit());
    if !digits(0..4) || !digits(5..7) || !digits(8..10) {
        return false;
    }
    let month: u32 = date[5..7].parse().unwrap_or(0);
    let day: u32 = date[8..10].parse().unwrap_or(0);
    (1..=12).contains(&month) && (1..=31).contains(&day)
}

/// Today as `YYYY-MM-DD` (UTC), via days-since-epoch → civil date
/// (Howard Hinnant's algorithm). No clock crates in the offline build.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// A malformed allowlist file. Always fatal: a silently dropped entry
/// would un-excuse (or worse, a typo'd one would never match and rot).
#[derive(Debug, PartialEq, Eq)]
pub struct AllowlistError {
    /// 1-based line of the problem.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schedlint.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the `[[allow]]` subset described in the module docs.
    pub fn parse(text: &str) -> Result<Allowlist, AllowlistError> {
        type Partial = (
            u32,
            Option<String>,
            Option<String>,
            Option<String>,
            Option<String>,
            Option<String>,
        );
        let mut entries = Vec::new();
        let mut cur: Option<Partial> = None;
        let finish = |cur: &mut Option<Partial>,
                      entries: &mut Vec<AllowEntry>|
         -> Result<(), AllowlistError> {
            if let Some((line, rule, path, contains, justification, expires)) = cur.take() {
                let rule = rule.ok_or(AllowlistError {
                    line,
                    message: "entry is missing `rule`".into(),
                })?;
                let justification =
                    justification
                        .filter(|j| !j.trim().is_empty())
                        .ok_or(AllowlistError {
                            line,
                            message: format!(
                                "entry for {rule} is missing a non-empty `justification` — \
                             every allowlisted finding must say why it is acceptable"
                            ),
                        })?;
                if let Some(e) = &expires {
                    if !valid_date(e) {
                        return Err(AllowlistError {
                            line,
                            message: format!(
                                "entry for {rule} has malformed `expires` {e:?} — use \
                                 `YYYY-MM-DD`"
                            ),
                        });
                    }
                }
                entries.push(AllowEntry {
                    rule,
                    path,
                    contains,
                    justification,
                    expires,
                    line,
                });
            }
            Ok(())
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut cur, &mut entries)?;
                cur = Some((lineno, None, None, None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("expected `key = \"value\"` or `[[allow]]`, got {line:?}"),
                });
            };
            let Some(entry) = cur.as_mut() else {
                return Err(AllowlistError {
                    line: lineno,
                    message: "key outside any [[allow]] table".into(),
                });
            };
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or(AllowlistError {
                    line: lineno,
                    message: format!("value for `{}` must be a double-quoted string", key.trim()),
                })?
                .replace("\\\"", "\"")
                .replace("\\\\", "\\");
            let slot = match key.trim() {
                "rule" => &mut entry.1,
                "path" => &mut entry.2,
                "contains" => &mut entry.3,
                "justification" => &mut entry.4,
                "expires" => &mut entry.5,
                other => {
                    return Err(AllowlistError {
                        line: lineno,
                        message: format!(
                            "unknown key `{other}` (rule|path|contains|justification|expires)"
                        ),
                    })
                }
            };
            if slot.is_some() {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("duplicate key `{}` in entry", key.trim()),
                });
            }
            *slot = Some(value.to_string());
        }
        finish(&mut cur, &mut entries)?;
        Ok(Allowlist { entries })
    }

    /// Splits `diags` into (remaining, excused) and reports entries that
    /// excused nothing. Each diagnostic is consumed by the first
    /// matching entry.
    pub fn apply(
        &self,
        diags: Vec<crate::Diagnostic>,
    ) -> (Vec<crate::Diagnostic>, usize, Vec<&AllowEntry>) {
        let mut used = vec![false; self.entries.len()];
        let mut remaining = Vec::new();
        let mut excused = 0usize;
        for d in diags {
            match self.entries.iter().position(|e| e.matches(&d)) {
                Some(k) => {
                    used[k] = true;
                    excused += 1;
                }
                None => remaining.push(d),
            }
        }
        let unused = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e)
            .collect();
        (remaining, excused, unused)
    }

    /// Entries whose `expires` date has passed as of `today`
    /// (`YYYY-MM-DD`; ISO dates compare lexicographically). An entry is
    /// valid *through* its expiry date — it fails starting the next
    /// day.
    pub fn expired(&self, today: &str) -> Vec<&AllowEntry> {
        self.entries
            .iter()
            .filter(|e| e.expires.as_deref().is_some_and(|x| today > x))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostic;

    fn diag(rule: &'static str, path: &str, message: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.into(),
            line: 1,
            message: message.into(),
        }
    }

    #[test]
    fn parse_match_and_unused_tracking() {
        let al = Allowlist::parse(
            r#"
# triaged exceptions
[[allow]]
rule = "SL020"
path = "crates/native-rt/src/uds.rs"
contains = "write_all"
justification = "response write happens after the state guard is dropped"

[[allow]]
rule = "SL011"
justification = "never fires; kept to test unused reporting"
"#,
        )
        .unwrap();
        assert_eq!(al.entries.len(), 2);
        let diags = vec![
            diag(
                "SL020",
                "crates/native-rt/src/uds.rs",
                "calls blocking write_all",
            ),
            diag(
                "SL020",
                "crates/native-rt/src/pool.rs",
                "calls blocking write_all",
            ),
        ];
        let (remaining, excused, unused) = al.apply(diags);
        assert_eq!(excused, 1);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].path, "crates/native-rt/src/pool.rs");
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "SL011");
    }

    #[test]
    fn missing_justification_is_fatal() {
        let err = Allowlist::parse("[[allow]]\nrule = \"SL040\"\n").unwrap_err();
        assert!(err.message.contains("justification"), "{err}");
    }

    #[test]
    fn missing_rule_is_fatal() {
        let err = Allowlist::parse("[[allow]]\njustification = \"because\"\n").unwrap_err();
        assert!(err.message.contains("rule"), "{err}");
    }

    #[test]
    fn unquoted_value_is_fatal() {
        let err = Allowlist::parse("[[allow]]\nrule = SL040\n").unwrap_err();
        assert!(err.message.contains("double-quoted"), "{err}");
    }

    #[test]
    fn expires_parses_and_round_trips() {
        let al = Allowlist::parse(
            "[[allow]]\nrule = \"SL020\"\njustification = \"triaged\"\n\
             expires = \"2026-09-30\"\n",
        )
        .unwrap();
        assert_eq!(al.entries[0].expires.as_deref(), Some("2026-09-30"));
        assert!(al.entries[0].describe().contains("expires 2026-09-30"));
    }

    #[test]
    fn malformed_expires_is_fatal() {
        for bad in [
            "2026-9-30",
            "someday",
            "2026/09/30",
            "2026-13-01",
            "2026-01-32",
        ] {
            let err = Allowlist::parse(&format!(
                "[[allow]]\nrule = \"SL020\"\njustification = \"x\"\nexpires = \"{bad}\"\n"
            ))
            .unwrap_err();
            assert!(err.message.contains("expires"), "{bad}: {err}");
        }
    }

    #[test]
    fn expiry_boundary_is_valid_through_the_date() {
        let al = Allowlist::parse(
            "[[allow]]\nrule = \"SL020\"\njustification = \"x\"\nexpires = \"2026-08-07\"\n\
             [[allow]]\nrule = \"SL030\"\njustification = \"y\"\n",
        )
        .unwrap();
        // On the expiry date itself the entry still holds.
        assert!(al.expired("2026-08-07").is_empty());
        // The day after, it fails. Undated entries never expire.
        let ex = al.expired("2026-08-08");
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].rule, "SL020");
        assert!(al.expired("2030-01-01")[0].rule == "SL020");
    }

    #[test]
    fn today_utc_is_a_valid_iso_date() {
        let t = today_utc();
        assert!(super::valid_date(&t), "{t}");
        assert!(t.as_str() > "2026-01-01", "{t}");
    }
}
