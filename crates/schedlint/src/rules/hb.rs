//! SL004/SL005 — happens-before pairing audit.
//!
//! SL001–SL003 check each atomic *site* against its `sched-atomic(...)`
//! category. This module checks the *pairs* the categories claim exist:
//!
//! - **SL004** (`handoff`): a Release-side publish (store or RMW with a
//!   Release/AcqRel/SeqCst success ordering) is only a synchronization
//!   edge if some thread performs the matching Acquire-side observation
//!   (Acquire+ load, or Acquire/AcqRel/SeqCst RMW) of the same atomic.
//!   A handoff atomic with publishes but no acquire anywhere in its
//!   crate is an orphaned publish: the data it claims to hand off is
//!   read unordered, or not at all.
//! - **SL005** (`seqcst`): a Dekker store-load protocol needs both
//!   halves in the single total order. An annotated Dekker atomic whose
//!   non-test sites include SeqCst stores but no SeqCst load (or the
//!   reverse) has been downgraded one-sidedly — usually by a refactor
//!   that moved one half behind a helper or deleted it.
//!
//! Sites are matched the way the rest of the audit matches them: by
//! receiver name within the declaring crate, tests excluded. RMWs count
//! on both sides (an `AcqRel` `fetch_sub` both publishes and observes).
//! `verified`/`relaxed` categories are out of scope — the former is
//! proven elsewhere, the latter promises no ordering to pair.

use std::collections::BTreeMap;

use crate::lexer::Tok;
use crate::model::{AtomicCategory, FileModel};
use crate::rules::{first_ordering, is_method, match_paren, receiver_name, OpKind};
use crate::Diagnostic;

/// One classified atomic operation site.
#[derive(Debug, Clone)]
struct Site {
    path: String,
    line: u32,
    op: String,
    kind: OpKind,
    ordering: String,
}

impl Site {
    /// Release-side publish: makes prior writes visible to an acquirer.
    fn publishes(&self) -> bool {
        self.kind != OpKind::Load
            && matches!(self.ordering.as_str(), "Release" | "AcqRel" | "SeqCst")
    }

    /// Acquire-side observation: orders subsequent reads after the
    /// publish it reads from.
    fn acquires(&self) -> bool {
        match self.kind {
            OpKind::Load => matches!(self.ordering.as_str(), "Acquire" | "SeqCst"),
            OpKind::Store => false,
            OpKind::Rmw => matches!(self.ordering.as_str(), "Acquire" | "AcqRel" | "SeqCst"),
        }
    }

    fn stores_seqcst(&self) -> bool {
        self.kind != OpKind::Load && self.ordering == "SeqCst"
    }

    fn loads_seqcst(&self) -> bool {
        self.kind != OpKind::Store && self.ordering == "SeqCst"
    }
}

pub(crate) fn check(models: &[FileModel]) -> Vec<Diagnostic> {
    // (crate, atomic name) → category. Conflicts are SL003's business.
    let mut registry: BTreeMap<(String, String), AtomicCategory> = BTreeMap::new();
    for m in models {
        for d in &m.atomic_decls {
            if let Some(cat) = d.category {
                registry
                    .entry((m.crate_name.clone(), d.name.clone()))
                    .or_insert(cat);
            }
        }
    }

    // Classified non-test sites per registered atomic.
    let mut sites: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
    for m in models {
        for i in 0..m.tokens.len() {
            let Tok::Ident(op) = &m.tokens[i].tok else {
                continue;
            };
            let Some(kind) = OpKind::classify(op) else {
                continue;
            };
            if !is_method(m, i)
                || !matches!(m.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                || m.in_tests(i)
            {
                continue;
            }
            let Some(recv) = receiver_name(m, i - 1) else {
                continue;
            };
            let key = (m.crate_name.clone(), recv);
            if !registry.contains_key(&key) {
                continue;
            }
            let close = match_paren(m, i + 1);
            let Some(ord) = first_ordering(m, i + 2, close) else {
                continue; // same-named non-atomic method
            };
            sites.entry(key).or_default().push(Site {
                path: m.path.clone(),
                line: m.tokens[i].line,
                op: op.clone(),
                kind,
                ordering: ord.to_string(),
            });
        }
    }

    let mut diags = Vec::new();
    for ((krate, name), cat) in &registry {
        let sites = sites
            .get(&(krate.clone(), name.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        match cat {
            AtomicCategory::Handoff => {
                let publishes: Vec<&Site> = sites.iter().filter(|s| s.publishes()).collect();
                let has_acquire = sites.iter().any(|s| s.acquires());
                if !publishes.is_empty() && !has_acquire {
                    let w = publishes[0];
                    diags.push(Diagnostic {
                        rule: "SL004",
                        path: w.path.clone(),
                        line: w.line,
                        message: format!(
                            "hand-off atomic `{name}`: `{}` publishes with \
                             `Ordering::{}` but no Acquire-side load/RMW of `{name}` \
                             exists in crate `{krate}` — an orphaned publish is not a \
                             synchronization edge; add the acquire observer or \
                             re-categorize the atomic",
                            w.op, w.ordering
                        ),
                    });
                }
            }
            AtomicCategory::SeqCst => {
                let store = sites.iter().find(|s| s.stores_seqcst());
                let load = sites.iter().find(|s| s.loads_seqcst());
                match (store, load) {
                    (Some(w), None) => diags.push(Diagnostic {
                        rule: "SL005",
                        path: w.path.clone(),
                        line: w.line,
                        message: format!(
                            "Dekker atomic `{name}`: SeqCst store side present but no \
                             SeqCst load of `{name}` in crate `{krate}` — the store-load \
                             handshake has been downgraded on one side and the total \
                             order proves nothing"
                        ),
                    }),
                    (None, Some(w)) => diags.push(Diagnostic {
                        rule: "SL005",
                        path: w.path.clone(),
                        line: w.line,
                        message: format!(
                            "Dekker atomic `{name}`: SeqCst load side present but no \
                             SeqCst store of `{name}` in crate `{krate}` — the store-load \
                             handshake has been downgraded on one side and the total \
                             order proves nothing"
                        ),
                    }),
                    _ => {}
                }
            }
            AtomicCategory::Relaxed | AtomicCategory::Verified => {}
        }
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse("f.rs", "native-rt", src);
        check(&[m])
    }

    #[test]
    fn paired_handoff_is_clean() {
        let d = run(r#"
struct S { flag: AtomicBool } // sched-atomic(handoff): publishes drain.
fn publish(s: &S) { s.flag.store(true, Ordering::Release); }
fn observe(s: &S) -> bool { s.flag.load(Ordering::Acquire) }
"#);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn orphaned_publish_fires_sl004() {
        let d = run(r#"
struct S { flag: AtomicBool } // sched-atomic(handoff): publishes drain.
fn publish(s: &S) { s.flag.store(true, Ordering::Release); }
"#);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "SL004");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn acqrel_rmw_counts_as_its_own_observer() {
        let d = run(r#"
struct S { outstanding: AtomicUsize } // sched-atomic(handoff): completion count.
fn retire(s: &S) { s.outstanding.fetch_sub(1, Ordering::AcqRel); }
"#);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_only_acquire_does_not_pair() {
        let d = run(r#"
struct S { flag: AtomicBool } // sched-atomic(handoff): publishes drain.
fn publish(s: &S) { s.flag.store(true, Ordering::Release); }
mod tests {
    fn observe(s: &super::S) -> bool { s.flag.load(Ordering::Acquire) }
}
"#);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "SL004");
    }

    #[test]
    fn two_sided_dekker_is_clean_one_sided_fires_sl005() {
        let both = run(r#"
struct S { gate: AtomicBool } // sched-atomic(seqcst): Dekker with the poller.
fn raise(s: &S) { s.gate.store(true, Ordering::SeqCst); }
fn check(s: &S) -> bool { s.gate.load(Ordering::SeqCst) }
"#);
        assert!(both.is_empty(), "{both:?}");
        let store_only = run(r#"
struct S { gate: AtomicBool } // sched-atomic(seqcst): Dekker with the poller.
fn raise(s: &S) { s.gate.store(true, Ordering::SeqCst); }
"#);
        assert_eq!(store_only.len(), 1, "{store_only:?}");
        assert_eq!(store_only[0].rule, "SL005");
        let load_only = run(r#"
struct S { gate: AtomicBool } // sched-atomic(seqcst): Dekker with the poller.
fn check(s: &S) -> bool { s.gate.load(Ordering::SeqCst) }
"#);
        assert_eq!(load_only.len(), 1, "{load_only:?}");
        assert_eq!(load_only[0].rule, "SL005");
    }

    #[test]
    fn seqcst_rmw_satisfies_both_sides() {
        let d = run(r#"
struct S { turn: AtomicUsize } // sched-atomic(seqcst): ticket handshake.
fn advance(s: &S) { s.turn.fetch_add(1, Ordering::SeqCst); }
"#);
        assert!(d.is_empty(), "{d:?}");
    }
}
