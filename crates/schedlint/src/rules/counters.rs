//! SL030/SL031 — counter conservation.
//!
//! Every counter registered against `native_rt::stats` must (a) have an
//! increment site somewhere in its crate (a registered-but-never-bumped
//! counter silently reads 0 in every REPORT/STATS export and masquerades
//! as "nothing happened"), and (b) appear in the DESIGN.md counter
//! catalog, which is what operators grep when a REPORT field surprises
//! them. Dynamic registrations (`&format!(...)`) can't be tied to an
//! increment site by name, so they must carry a
//! `// sched-counters: name1 name2 …` annotation enumerating the names
//! they mint; the catalog check then runs on those.
//!
//! SL031 is the path-sensitive half: a function annotated
//! `// sched-counter-exits(a|b): why` claims that *every* exit path —
//! normal return, early `return`, `?` — increments at least one of the
//! named counter bindings. The claim is checked on the [`crate::cfg`]
//! region tree, with one-level interprocedural credit: calling a
//! same-file function that unconditionally increments a named counter
//! (e.g. a `reply_malformed` helper) satisfies the path. This catches
//! the success-path-only accounting bug: the happy arm bumps, the error
//! arm returns early and the event vanishes from every export.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg;
use crate::lexer::Tok;
use crate::model::FileModel;
use crate::workspace::Config;
use crate::Diagnostic;

pub(crate) fn check(models: &[FileModel], config: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(check_exit_annotations(models));
    for m in models {
        if !config.registry_crates.iter().any(|c| c == &m.crate_name) {
            continue;
        }
        for reg in &m.counter_regs {
            if reg.unannotated_dynamic {
                diags.push(Diagnostic {
                    rule: "SL030",
                    path: m.path.clone(),
                    line: reg.line,
                    message: "dynamic counter registration (non-literal name) without a \
                              `// sched-counters: name1 name2 …` annotation — the \
                              conservation check cannot see which counters this mints"
                        .to_string(),
                });
                continue;
            }
            // Increment evidence: only demanded of literal registrations
            // bound to a name. Annotated dynamic sites register through
            // closures/arrays the name heuristic can't bind.
            let literal = reg.names.len() == 1 && reg.binding.is_some() || reg.inline_incr;
            if literal && !reg.inline_incr {
                let b = reg.binding.as_deref().unwrap();
                if !binding_incremented(models, &m.crate_name, b) {
                    diags.push(Diagnostic {
                        rule: "SL030",
                        path: m.path.clone(),
                        line: reg.line,
                        message: format!(
                            "counter `{}` (bound as `{b}`) is registered but never \
                             incremented — it reads 0 in every export and hides the event \
                             it claims to measure",
                            reg.names.join(", ")
                        ),
                    });
                }
            }
            for name in &reg.names {
                if !config.counter_doc.contains(&format!("`{name}`")) {
                    diags.push(Diagnostic {
                        rule: "SL030",
                        path: m.path.clone(),
                        line: reg.line,
                        message: format!(
                            "counter `{name}` is missing from the {} catalog — add it \
                             (with when-it-moves semantics) so REPORT/STATS consumers can \
                             interpret it",
                            config.counter_doc_name
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// SL031: verify every `sched-counter-exits(a|b)` annotation on the
/// region tree. Runs in all crates — the annotation is opt-in, so its
/// presence is the claim.
fn check_exit_annotations(models: &[FileModel]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for m in models {
        let file_fns: BTreeSet<String> = m.functions.iter().map(|f| f.name.clone()).collect();
        // Per-file callee summaries: which counter bindings a function
        // increments on every path (one level, no nesting).
        let mut summaries: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &m.functions {
            let tree = cfg::build(m, f, &file_fns);
            summaries.insert(f.name.clone(), cfg::always_incremented(&tree));
        }
        for f in &m.functions {
            let Some(names) = &f.counter_exits else {
                continue;
            };
            if m.in_tests(f.body_start) {
                continue;
            }
            let targets: BTreeSet<String> = names.iter().cloned().collect();
            let tree = cfg::build(m, f, &file_fns);
            for miss in cfg::exit_increments(&tree, f.line, &targets, &summaries) {
                diags.push(Diagnostic {
                    rule: "SL031",
                    path: m.path.clone(),
                    line: miss.line,
                    message: format!(
                        "`{}` {} without incrementing any of {} — the \
                         `sched-counter-exits` claim is violated on this path, so the \
                         event disappears from every export",
                        f.name,
                        miss.what,
                        names
                            .iter()
                            .map(|n| format!("`{n}`"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
    }
    diags
}

/// Does `binding` get `.incr()`/`.add(` anywhere in its crate (directly
/// or through an index: `tiers[i].incr()`)?
fn binding_incremented(models: &[FileModel], krate: &str, binding: &str) -> bool {
    for m in models {
        if m.crate_name != krate {
            continue;
        }
        for i in 0..m.tokens.len() {
            let Tok::Ident(w) = &m.tokens[i].tok else {
                continue;
            };
            if w != binding {
                continue;
            }
            let mut j = i + 1;
            // Skip one index expression.
            if matches!(m.tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
                let mut depth = 0isize;
                while j < m.tokens.len() {
                    match m.tokens[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            if matches!(m.tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('.')))
                && matches!(
                    m.tokens.get(j + 1).map(|t| &t.tok),
                    Some(Tok::Ident(op)) if op == "incr" || op == "add"
                )
            {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, doc: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse("f.rs", "native-rt", src);
        let mut cfg = Config::for_tests();
        cfg.counter_doc = doc.to_string();
        check(&[m], &cfg)
    }

    #[test]
    fn registered_and_incremented_and_documented_is_clean() {
        let d = run(
            r#"
struct Stats { jobs_run: Counter }
fn mk(r: &Registry) -> Stats { Stats { jobs_run: r.counter("jobs_run") } }
fn bump(s: &Stats) { s.jobs_run.incr(); }
"#,
            "catalog: `jobs_run` counts completed jobs.",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn never_incremented_counter_fires() {
        let d = run(
            r#"
struct Stats { ghosts: Counter }
fn mk(r: &Registry) -> Stats { Stats { ghosts: r.counter("ghosts") } }
"#,
            "catalog: `ghosts`.",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "SL030");
        assert!(d[0].message.contains("never"));
    }

    #[test]
    fn undocumented_counter_fires() {
        let d = run(
            r#"
struct Stats { drops: Counter }
fn mk(r: &Registry) -> Stats { Stats { drops: r.counter("drops") } }
fn bump(s: &Stats) { s.drops.incr(); }
"#,
            "catalog has other things only.",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("missing from"));
    }

    #[test]
    fn dynamic_registration_needs_annotation() {
        let bad = r#"
fn mk(r: &Registry) { let tiers = make(|i| r.counter(&format!("tier_{}", i))); }
"#;
        let good = r#"
fn mk(r: &Registry) {
    // sched-counters: tier_0 tier_1
    let tiers = make(|i| r.counter(&format!("tier_{}", i)));
}
"#;
        let d = run(bad, "");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("sched-counters"));
        let d = run(good, "`tier_0` `tier_1`");
        assert!(d.is_empty(), "{d:?}");
    }
}
