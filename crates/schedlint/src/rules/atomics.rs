//! SL001/SL002/SL003 — the atomics-ordering audit.
//!
//! Keyed off the annotated registry: every atomic declaration in a
//! registry crate carries a `// sched-atomic(<category>): <why>`
//! comment (`handoff`, `seqcst`, `relaxed`, `verified` — see
//! [`AtomicCategory`]). Usages are matched *by receiver name within the
//! declaring crate*: `sh.suspended_flags[v].store(…, Relaxed)` is
//! checked against the `suspended_flags` declaration. Loads, stores,
//! and RMWs are classified separately; for `compare_exchange*` and
//! `fetch_update` the *success* ordering (first `Ordering` argument) is
//! the one checked.

use std::collections::BTreeMap;

use crate::lexer::Tok;
use crate::model::{AtomicCategory, FileModel};
use crate::rules::{first_ordering, match_paren, receiver_name, OpKind};
use crate::workspace::Config;
use crate::Diagnostic;

/// Strength ladder for "too weak / too strong" wording.
fn is_relaxed(o: &str) -> bool {
    o == "Relaxed"
}

pub(crate) fn check(models: &[FileModel], config: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Crate-scoped registry: (crate, name) → category. Conflicting
    // annotations for the same name inside one crate are an error — the
    // name is the key usages are matched by.
    let mut registry: BTreeMap<(String, String), (AtomicCategory, String, u32)> = BTreeMap::new();
    for m in models {
        for d in &m.atomic_decls {
            let Some(cat) = d.category else {
                if config.registry_crates.iter().any(|c| c == &m.crate_name) {
                    diags.push(Diagnostic {
                        rule: "SL003",
                        path: m.path.clone(),
                        line: d.line,
                        message: format!(
                            "atomic `{}` has no `sched-atomic(...)` annotation; declare its role \
                             (handoff|seqcst|relaxed|verified) so the ordering audit covers it",
                            d.name
                        ),
                    });
                }
                continue;
            };
            let key = (m.crate_name.clone(), d.name.clone());
            if let Some((prev, ppath, pline)) = registry.get(&key) {
                if *prev != cat {
                    diags.push(Diagnostic {
                        rule: "SL003",
                        path: m.path.clone(),
                        line: d.line,
                        message: format!(
                            "atomic `{}` annotated `{}` here but `{}` at {}:{} — same name, same \
                             crate, categories must agree",
                            d.name,
                            cat.name(),
                            prev.name(),
                            ppath,
                            pline
                        ),
                    });
                }
            } else {
                registry.insert(key, (cat, m.path.clone(), d.line));
            }
        }
    }

    for m in models {
        for i in 0..m.tokens.len() {
            let Tok::Ident(op) = &m.tokens[i].tok else {
                continue;
            };
            let Some(kind) = OpKind::classify(op) else {
                continue;
            };
            // Must be a method call: `.op(`.
            if i == 0
                || !matches!(m.tokens[i - 1].tok, Tok::Punct('.'))
                || !matches!(m.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
            {
                continue;
            }
            if m.in_tests(i) {
                continue;
            }
            let Some(recv) = receiver_name(m, i - 1) else {
                continue;
            };
            let Some((cat, _, _)) = registry.get(&(m.crate_name.clone(), recv.clone())) else {
                continue;
            };
            if *cat == AtomicCategory::Verified {
                continue;
            }
            // The success ordering: first `Ordering::X` path inside the
            // call's parentheses.
            let close = match_paren(m, i + 1);
            let Some(ord) = first_ordering(m, i + 2, close) else {
                continue; // no explicit ordering (e.g. a same-named non-atomic method)
            };
            let line = m.tokens[i].line;
            let diag = |rule: &'static str, message: String| Diagnostic {
                rule,
                path: m.path.clone(),
                line,
                message,
            };
            match cat {
                AtomicCategory::Handoff => {
                    if is_relaxed(ord) && kind != OpKind::Load {
                        diags.push(diag(
                            "SL001",
                            format!(
                                "`{recv}` is a hand-off atomic: `{op}` with `Ordering::Relaxed` \
                                 publishes data without a release edge (readers may see the flag \
                                 before the data it guards)"
                            ),
                        ));
                    } else if is_relaxed(ord) && kind == OpKind::Load {
                        diags.push(diag(
                            "SL001",
                            format!(
                                "`{recv}` is a hand-off atomic: a `Relaxed` load misses the \
                                 acquire edge pairing with its release store"
                            ),
                        ));
                    } else if ord == "SeqCst" {
                        diags.push(diag(
                            "SL002",
                            format!(
                                "`{recv}` is a pairwise hand-off: `SeqCst` buys a total order \
                                 nothing consumes — `AcqRel`/`Release`/`Acquire` suffices"
                            ),
                        ));
                    }
                }
                AtomicCategory::SeqCst => {
                    if ord != "SeqCst" {
                        diags.push(diag(
                            "SL001",
                            format!(
                                "`{recv}` is part of a Dekker-style store-load protocol: \
                                 `{op}` must use `Ordering::SeqCst`, found `{ord}` (the \
                                 handshake reorders without the total order)"
                            ),
                        ));
                    }
                }
                AtomicCategory::Relaxed => {
                    if !is_relaxed(ord) {
                        diags.push(diag(
                            "SL002",
                            format!(
                                "`{recv}` is a statistic/hint (`sched-atomic(relaxed)`): \
                                 `{ord}` adds fence cost on a hot path for no synchronization \
                                 benefit"
                            ),
                        ));
                    }
                }
                AtomicCategory::Verified => unreachable!(),
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse("f.rs", "native-rt", src);
        check(&[m], &Config::for_tests())
    }

    #[test]
    fn relaxed_publish_on_handoff_fires() {
        let d = run(r#"
struct S { flag: AtomicBool } // sched-atomic(handoff): publishes drain.
fn f(s: &S) { s.flag.store(true, Ordering::Relaxed); }
"#);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "SL001");
    }

    #[test]
    fn release_on_handoff_is_clean_and_seqcst_overstrong() {
        let d = run(r#"
struct S { flag: AtomicBool } // sched-atomic(handoff): publishes drain.
fn ok(s: &S) { s.flag.store(true, Ordering::Release); }
fn strong(s: &S) { s.flag.store(true, Ordering::SeqCst); }
"#);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "SL002");
    }

    #[test]
    fn unannotated_atomic_in_registry_crate_fires_sl003() {
        let d = run("struct S { n: AtomicUsize }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "SL003");
    }
}
