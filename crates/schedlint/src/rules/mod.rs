//! The rule implementations. Each module exposes
//! `check(models, …) -> Vec<Diagnostic>`.

pub mod atomics;
pub mod counters;
pub mod locks;
pub mod unsafety;

use crate::lexer::Tok;
use crate::model::FileModel;

/// Extracts the receiver *name* of a method call whose `.` sits at token
/// index `dot` — the last field in the access chain, skipping an index
/// expression: `self.inner.top` → `top`, `sh.flags[victim]` → `flags`,
/// `SHUTDOWN` → `SHUTDOWN`. Returns `None` for computed receivers
/// (`foo().bar`, `(*ptr).bar`, tuple fields).
pub(crate) fn receiver_name(m: &FileModel, dot: usize) -> Option<String> {
    let mut i = dot;
    // Skip a trailing index `[ … ]`.
    if i > 0 && matches!(m.tokens[i - 1].tok, Tok::Punct(']')) {
        let mut depth = 0isize;
        let mut j = i - 1;
        loop {
            match m.tokens[j].tok {
                Tok::Punct(']') => depth += 1,
                Tok::Punct('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        i = j;
    }
    match m.tokens.get(i.checked_sub(1)?).map(|t| &t.tok) {
        Some(Tok::Ident(name)) => Some(name.clone()),
        _ => None,
    }
}

/// The index one past the `)` closing the `(` at `open`.
pub(crate) fn match_paren(m: &FileModel, open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < m.tokens.len() {
        match m.tokens[i].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    m.tokens.len()
}
