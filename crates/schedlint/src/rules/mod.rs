//! The rule implementations. Each module exposes
//! `check(models, …) -> Vec<Diagnostic>`, plus the token-pattern
//! helpers (receiver extraction, paren matching, guard-acquire and
//! atomic-op classification) shared across rule families.

pub mod atomics;
pub mod counters;
pub mod hb;
pub mod locks;
pub mod proto;
pub mod unsafety;

use crate::lexer::Tok;
use crate::model::FileModel;

/// Calls that block the calling thread. Deliberately *not* listed:
/// `join` (collides with `slice::join`/`str::join`), `yield_now`
/// (bounded), `write`/`read` (collide with `io::Write`/RwLock naming).
pub(crate) const BLOCKING: &[&str] = &[
    "sleep",
    "sleep_ms",
    "park",
    "park_timeout",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "write_fmt",
    "flush",
    "accept",
    "connect",
    "recv",
    "recv_timeout",
    "recv_from",
    "send_to",
];

/// Condvar-style waits (release the named guard while parked).
pub(crate) const WAITS: &[&str] = &["wait", "wait_while", "wait_timeout", "wait_timeout_while"];

/// Memory-ordering path tails (`Ordering::X`).
pub(crate) const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic operations that only load.
pub(crate) const LOAD_OPS: &[&str] = &["load"];
/// Atomic operations that only store.
pub(crate) const STORE_OPS: &[&str] = &["store"];
/// Read-modify-write atomic operations (success ordering is checked).
pub(crate) const RMW_OPS: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// How an atomic method call touches memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// Pure load.
    Load,
    /// Pure store.
    Store,
    /// Read-modify-write (both sides of a hand-off).
    Rmw,
}

impl OpKind {
    /// Classifies an atomic method name.
    pub(crate) fn classify(op: &str) -> Option<OpKind> {
        if LOAD_OPS.contains(&op) {
            Some(OpKind::Load)
        } else if STORE_OPS.contains(&op) {
            Some(OpKind::Store)
        } else if RMW_OPS.contains(&op) {
            Some(OpKind::Rmw)
        } else {
            None
        }
    }
}

/// The first `…::<ordering>` path between token indices `from..to` —
/// for `compare_exchange*`/`fetch_update` this is the *success*
/// ordering, which is the one the audit checks.
pub(crate) fn first_ordering(m: &FileModel, from: usize, to: usize) -> Option<&str> {
    for j in from..to.min(m.tokens.len()) {
        if let Tok::Ident(w) = &m.tokens[j].tok {
            if ORDERINGS.contains(&w.as_str())
                && j >= 2
                && matches!(m.tokens[j - 1].tok, Tok::Punct(':'))
                && matches!(m.tokens[j - 2].tok, Tok::Punct(':'))
            {
                return Some(w);
            }
        }
    }
    None
}

/// True when the token at `i` is a method-call name (`.name(`).
pub(crate) fn is_method(m: &FileModel, i: usize) -> bool {
    i > 0 && matches!(m.tokens[i - 1].tok, Tok::Punct('.'))
}

/// True when the token at `i` is the tail of a `path::call(`.
pub(crate) fn is_path_call(m: &FileModel, i: usize) -> bool {
    i > 0 && matches!(m.tokens[i - 1].tok, Tok::Punct(':'))
}

/// How a `.lock()` call site binds its guard.
#[derive(Debug, Clone)]
pub(crate) struct AcquireInfo {
    /// The `let` binding holding the guard, if any.
    pub bind: Option<String>,
    /// The call sits in an `if let`/`while let` condition (the guard —
    /// or scrutinee temporary, edition 2021 — lives through the block).
    pub cond: bool,
    /// The guard is an unbound temporary dying at its statement's end.
    pub temp: bool,
}

/// Analyzes the `.lock()` call at token `i` (the `lock` ident):
/// resolves the `let` binding by scanning back to the statement head,
/// detects `if let`/`while let` conditions, and treats method chains
/// past the guard (other than `.unwrap()`/`.expect()`) as unbinding it.
pub(crate) fn acquire_info(m: &FileModel, body_start: usize, i: usize) -> AcquireInfo {
    let (mut bind, cond) = binding_for(m, body_start, i);
    let mut j = match_paren(m, i + 1);
    while matches!(m.tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('.')))
        && matches!(
            m.tokens.get(j + 1).map(|t| &t.tok),
            Some(Tok::Ident(w)) if w == "unwrap" || w == "expect"
        )
        && matches!(m.tokens.get(j + 2).map(|t| &t.tok), Some(Tok::Punct('(')))
    {
        j = match_paren(m, j + 2);
    }
    let chained = matches!(m.tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('.')));
    if chained {
        bind = None;
    }
    AcquireInfo {
        temp: (bind.is_none() || chained) && !cond,
        bind,
        cond,
    }
}

/// Looks back from the `.lock()` call to the statement head for a
/// `let [mut] NAME =` binding; also reports whether the binding sits in
/// an `if let`/`while let` condition.
pub(crate) fn binding_for(m: &FileModel, body_start: usize, i: usize) -> (Option<String>, bool) {
    let mut j = i;
    let mut toks: Vec<&Tok> = Vec::new();
    while j > body_start {
        j -= 1;
        match &m.tokens[j].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            t => toks.push(t),
        }
        if toks.len() > 24 {
            break;
        }
    }
    toks.reverse(); // statement head → lock call, in source order
    let mut bind = None;
    let mut cond = false;
    for (k, t) in toks.iter().enumerate() {
        if let Tok::Ident(w) = t {
            match w.as_str() {
                "if" | "while" => cond = true,
                "let" => {
                    let mut n = k + 1;
                    while let Some(Tok::Ident(next)) = toks.get(n) {
                        if next == "mut" {
                            n += 1;
                            continue;
                        }
                        bind = Some(next.to_string());
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    // `if cond { ... }` without `let` is not a condition binding.
    (bind, cond)
}

/// Extracts the receiver *name* of a method call whose `.` sits at token
/// index `dot` — the last field in the access chain, skipping an index
/// expression: `self.inner.top` → `top`, `sh.flags[victim]` → `flags`,
/// `SHUTDOWN` → `SHUTDOWN`. Returns `None` for computed receivers
/// (`foo().bar`, `(*ptr).bar`, tuple fields).
pub(crate) fn receiver_name(m: &FileModel, dot: usize) -> Option<String> {
    let mut i = dot;
    // Skip a trailing index `[ … ]`.
    if i > 0 && matches!(m.tokens[i - 1].tok, Tok::Punct(']')) {
        let mut depth = 0isize;
        let mut j = i - 1;
        loop {
            match m.tokens[j].tok {
                Tok::Punct(']') => depth += 1,
                Tok::Punct('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        i = j;
    }
    match m.tokens.get(i.checked_sub(1)?).map(|t| &t.tok) {
        Some(Tok::Ident(name)) => Some(name.clone()),
        _ => None,
    }
}

/// The index one past the `)` closing the `(` at `open`.
pub(crate) fn match_paren(m: &FileModel, open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < m.tokens.len() {
        match m.tokens[i].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    m.tokens.len()
}
