//! SL010/SL011/SL020/SL021 — lock-order and blocking-under-lock
//! analysis.
//!
//! This is the static analogue of the paper's core pathology: a process
//! preempted (or blocked) while holding a lock stalls every sibling
//! spinning on it. Per function we track live `MutexGuard`s with a
//! scope/`drop()` heuristic; nested acquisitions become edges in a
//! crate-scoped lock-order graph (cycle ⇒ SL010), same-name nesting is
//! an immediate self-deadlock with non-reentrant `parking_lot` locks
//! (SL011), and a blocking call while any guard is live is SL020.
//!
//! The linear SL020 scan is *flow-insensitive*: a `drop(g)` inside one
//! `if` arm kills the guard for the rest of the scan even though the
//! other arm still holds it. SL021 closes that hole by re-running the
//! guard-liveness question on the region tree from [`crate::cfg`] — a
//! blocking call with a guard live on *some* path fires, minus the
//! sites SL020 already reported.
//!
//! Cross-function flow is one level deep: holding guard `A` while
//! calling a same-crate function that acquires `B` adds edge `A → B`.
//! Guards passed *into* functions and closures shipped to other threads
//! are the known blind spots (DESIGN.md §11).

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg;
use crate::lexer::Tok;
use crate::model::FileModel;
use crate::rules::{is_method, is_path_call, match_paren, receiver_name, BLOCKING, WAITS};
use crate::Diagnostic;

#[derive(Debug, Clone)]
struct Guard {
    /// Receiver name of the `.lock()` call — the lock's identity.
    lock: String,
    /// The `let` binding holding the guard, when there is one.
    bind: Option<String>,
    /// Brace depth the guard lives at; it dies when depth drops below.
    birth_depth: i32,
    /// Unbound temporary: dies at the end of its statement.
    temp: bool,
}

/// A lock-order edge with its witness site.
#[derive(Debug, Clone)]
struct Edge {
    path: String,
    line: u32,
    via: Option<String>,
}

pub(crate) fn check(models: &[FileModel]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Pass 1: per-function direct analysis. Also records, per
    // (crate, fn-name), the set of locks the function acquires, and the
    // calls made while guards were held.
    let mut fn_locks: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    let mut known_fns: BTreeSet<(String, String)> = BTreeSet::new();
    // (crate, held-locks, callee, path, line)
    let mut held_calls: Vec<(String, Vec<String>, String, String, u32)> = Vec::new();
    // (crate, from, to) → witness
    let mut edges: BTreeMap<(String, String, String), Edge> = BTreeMap::new();

    for m in models {
        for f in &m.functions {
            known_fns.insert((m.crate_name.clone(), f.name.clone()));
        }
    }

    for m in models {
        for f in &m.functions {
            if m.in_tests(f.body_start) {
                continue;
            }
            let mut depth: i32 = 0;
            let mut guards: Vec<Guard> = Vec::new();
            let mut i = f.body_start;
            while i < f.body_end.min(m.tokens.len()) {
                let line = m.tokens[i].line;
                match &m.tokens[i].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        guards.retain(|g| g.birth_depth <= depth);
                    }
                    Tok::Punct(';') => {
                        guards.retain(|g| !(g.temp && g.birth_depth == depth));
                    }
                    Tok::Ident(w) if w == "drop" && punct(m, i + 1, '(') => {
                        if let Some(Tok::Ident(victim)) = m.tokens.get(i + 2).map(|t| &t.tok) {
                            if punct(m, i + 3, ')') {
                                guards.retain(|g| {
                                    g.bind.as_deref() != Some(victim.as_str()) && g.lock != *victim
                                });
                            }
                        }
                    }
                    Tok::Ident(w) if w == "lock" && punct(m, i + 1, '(') && is_method(m, i) => {
                        if let Some(lock) = receiver_name(m, i - 1) {
                            for g in &guards {
                                if g.lock == lock {
                                    diags.push(Diagnostic {
                                        rule: "SL011",
                                        path: m.path.clone(),
                                        line,
                                        message: format!(
                                            "`{}` acquires `{}` while already holding it — \
                                             parking_lot mutexes are not reentrant; this \
                                             self-deadlocks",
                                            f.name, lock
                                        ),
                                    });
                                } else {
                                    edges
                                        .entry((m.crate_name.clone(), g.lock.clone(), lock.clone()))
                                        .or_insert(Edge {
                                            path: m.path.clone(),
                                            line,
                                            via: None,
                                        });
                                }
                            }
                            fn_locks
                                .entry((m.crate_name.clone(), f.name.clone()))
                                .or_default()
                                .insert(lock.clone());
                            // `mu.lock().pop_front()` chains past the
                            // guard (handled by `acquire_info`); a
                            // guard — or scrutinee temporary, edition
                            // 2021 — in an `if let`/`while let`
                            // condition lives through the *following*
                            // block, one level deeper.
                            let info = crate::rules::acquire_info(m, f.body_start, i);
                            guards.push(Guard {
                                lock,
                                bind: info.bind,
                                birth_depth: if info.cond { depth + 1 } else { depth },
                                temp: info.temp,
                            });
                        }
                    }
                    Tok::Ident(w)
                        if WAITS.contains(&w.as_str())
                            && punct(m, i + 1, '(')
                            && is_method(m, i)
                            && !guards.is_empty() =>
                    {
                        // `cv.wait(&mut g)` releases `g` while parked —
                        // legal. A wait naming none of our guards parks
                        // while every held lock stays held.
                        let close = match_paren(m, i + 1);
                        let names: BTreeSet<&str> = (i + 2..close.min(m.tokens.len()))
                            .filter_map(|k| match &m.tokens[k].tok {
                                Tok::Ident(s) => Some(s.as_str()),
                                _ => None,
                            })
                            .collect();
                        let foreign = !guards.iter().any(|g| {
                            g.bind.as_deref().is_some_and(|b| names.contains(b))
                                || names.contains(g.lock.as_str())
                        });
                        if foreign {
                            diags.push(Diagnostic {
                                rule: "SL020",
                                path: m.path.clone(),
                                line,
                                message: format!(
                                    "`{}` waits on a condvar that releases none of the held \
                                     guards ({}) — the paper's preempted-lock-holder stall, \
                                     made unconditional",
                                    f.name,
                                    held_list(&guards)
                                ),
                            });
                        }
                    }
                    Tok::Ident(w)
                        if BLOCKING.contains(&w.as_str())
                            && punct(m, i + 1, '(')
                            && (is_method(m, i) || is_path_call(m, i))
                            && !guards.is_empty() =>
                    {
                        diags.push(Diagnostic {
                            rule: "SL020",
                            path: m.path.clone(),
                            line,
                            message: format!(
                                "`{}` calls blocking `{}` while holding {} — a descheduled \
                                 lock holder stalls every thread contending for it",
                                f.name,
                                w,
                                held_list(&guards)
                            ),
                        });
                    }
                    Tok::Ident(callee)
                        if punct(m, i + 1, '(')
                            && !guards.is_empty()
                            && known_fns.contains(&(m.crate_name.clone(), callee.clone()))
                            && callee != &f.name =>
                    {
                        held_calls.push((
                            m.crate_name.clone(),
                            guards.iter().map(|g| g.lock.clone()).collect(),
                            callee.clone(),
                            m.path.clone(),
                            line,
                        ));
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }

    // Pass 2: one-level cross-function edges — holding `A` across a call
    // into a function that acquires `B` orders A before B; acquiring a
    // lock already held is a self-deadlock even through the call.
    for (krate, held, callee, path, line) in &held_calls {
        let Some(locks) = fn_locks.get(&(krate.clone(), callee.clone())) else {
            continue;
        };
        for h in held {
            for l in locks {
                if h == l {
                    diags.push(Diagnostic {
                        rule: "SL011",
                        path: path.clone(),
                        line: *line,
                        message: format!(
                            "calls `{callee}` (which acquires `{l}`) while already holding \
                             `{h}` — non-reentrant acquisition through the call"
                        ),
                    });
                } else {
                    edges
                        .entry((krate.clone(), h.clone(), l.clone()))
                        .or_insert(Edge {
                            path: path.clone(),
                            line: *line,
                            via: Some(callee.clone()),
                        });
                }
            }
        }
    }

    // Pass 3: cycles in the per-crate lock-order graph.
    diags.extend(find_cycles(&edges));

    // Pass 4 (SL021): re-ask the blocking-under-guard question on the
    // region tree, path-sensitively. Sites the linear SL020 pass
    // already reported are subtracted — SL021 is exactly the residue
    // the flow-insensitive scan missed (conditional drops, branch-local
    // holds).
    let reported: BTreeSet<(String, u32)> = diags
        .iter()
        .filter(|d| d.rule == "SL020")
        .map(|d| (d.path.clone(), d.line))
        .collect();
    for m in models {
        let file_fns: BTreeSet<String> = m.functions.iter().map(|f| f.name.clone()).collect();
        for f in &m.functions {
            if m.in_tests(f.body_start) {
                continue;
            }
            let tree = cfg::build(m, f, &file_fns);
            for site in cfg::may_live_blocking(&tree) {
                if reported.contains(&(m.path.clone(), site.line)) {
                    continue;
                }
                let locks: Vec<String> = site.locks.iter().map(|l| format!("`{l}`")).collect();
                diags.push(Diagnostic {
                    rule: "SL021",
                    path: m.path.clone(),
                    line: site.line,
                    message: format!(
                        "`{}` can reach blocking `{}` with {} held on some path — a \
                         conditional drop or branch-local acquire leaves the guard live \
                         where the linear scan loses track of it",
                        f.name,
                        site.name,
                        locks.join(", ")
                    ),
                });
            }
        }
    }
    diags
}

fn punct(m: &FileModel, i: usize, c: char) -> bool {
    matches!(m.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn held_list(guards: &[Guard]) -> String {
    let names: Vec<String> = guards.iter().map(|g| format!("`{}`", g.lock)).collect();
    names.join(", ")
}

/// DFS over the lock graph; a gray-node hit yields the cycle from the
/// current path. Cycles are canonicalized (rotated to their smallest
/// node) so each is reported once, at its first edge's witness site.
fn find_cycles(edges: &BTreeMap<(String, String, String), Edge>) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    for (krate, from, to) in edges.keys() {
        adj.entry((krate.clone(), from.clone()))
            .or_default()
            .push(to.clone());
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut diags = Vec::new();
    let nodes: Vec<(String, String)> = adj.keys().cloned().collect();
    for start in &nodes {
        let mut path: Vec<String> = vec![start.1.clone()];
        let mut stack: Vec<(String, usize)> = vec![(start.1.clone(), 0)];
        let mut on_path: BTreeSet<String> = [start.1.clone()].into();
        let krate = &start.0;
        while let Some((node, next)) = stack.last().cloned() {
            let succs = adj
                .get(&(krate.clone(), node.clone()))
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
            if next >= succs.len() {
                stack.pop();
                path.pop();
                on_path.remove(&node);
                continue;
            }
            stack.last_mut().unwrap().1 += 1;
            let succ = succs[next].clone();
            if on_path.contains(&succ) {
                // Cycle: slice of `path` from `succ` to the end.
                let pos = path.iter().position(|n| n == &succ).unwrap();
                let mut cycle: Vec<String> = path[pos..].to_vec();
                let min = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, n)| n.as_str())
                    .map(|(k, _)| k)
                    .unwrap();
                cycle.rotate_left(min);
                if seen_cycles.insert(cycle.clone()) {
                    let from = &cycle[0];
                    let to = &cycle[1 % cycle.len()];
                    let w = &edges[&(krate.clone(), from.clone(), to.clone())];
                    let mut desc = cycle.join("` → `");
                    desc.push_str("` → `");
                    desc.push_str(&cycle[0]);
                    let via = w
                        .via
                        .as_ref()
                        .map(|f| format!(" (edge via call to `{f}`)"))
                        .unwrap_or_default();
                    diags.push(Diagnostic {
                        rule: "SL010",
                        path: w.path.clone(),
                        line: w.line,
                        message: format!(
                            "lock-order cycle in crate `{krate}`: `{desc}` — two threads \
                             taking these in opposite order deadlock{via}"
                        ),
                    });
                }
                continue;
            }
            if adj.contains_key(&(krate.clone(), succ.clone())) {
                on_path.insert(succ.clone());
                path.push(succ.clone());
                stack.push((succ, 0));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse("f.rs", "c", src);
        check(&[m])
    }

    #[test]
    fn opposite_order_is_a_cycle() {
        let d = run(r#"
fn ab(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }
fn ba(s: &S) { let b = s.beta.lock(); let a = s.alpha.lock(); }
"#);
        assert_eq!(d.iter().filter(|d| d.rule == "SL010").count(), 1, "{d:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let d = run(r#"
fn one(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }
fn two(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }
"#);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn same_lock_nesting_is_sl011_direct_and_through_call() {
        let d = run(r#"
fn direct(s: &S) { let a = s.mu.lock(); let b = s.mu.lock(); }
fn helper(s: &S) { let g = s.mu.lock(); }
fn through(s: &S) { let a = s.mu.lock(); helper(s); }
"#);
        assert_eq!(d.iter().filter(|d| d.rule == "SL011").count(), 2, "{d:?}");
    }

    #[test]
    fn blocking_under_lock_fires_and_scope_end_clears() {
        let d = run(r#"
fn bad(s: &S) { let g = s.mu.lock(); thread::sleep(D); }
fn scoped(s: &S) { { let g = s.mu.lock(); } thread::sleep(D); }
fn dropped(s: &S) { let g = s.mu.lock(); drop(g); thread::sleep(D); }
fn temp(s: &S) { s.mu.lock().x = 1; thread::sleep(D); }
"#);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "SL020");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn condvar_wait_on_held_guard_is_legal_foreign_wait_is_not() {
        let d = run(r#"
fn ok(s: &S) { let mut g = s.mu.lock(); while !*g { s.cv.wait(&mut g); } }
fn bad(s: &S) { let g = s.mu.lock(); s.other_cv.wait(&mut unrelated); }
"#);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "SL020");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn if_let_guard_dies_with_its_block() {
        let d = run(r#"
fn f(s: &S) {
    if let g = s.mu.lock() {
        g.touch();
    }
    thread::sleep(D);
}
"#);
        assert!(d.is_empty(), "{d:?}");
    }
}
