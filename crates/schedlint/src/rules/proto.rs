//! SL050 — wire-protocol conformance.
//!
//! The two-engine design (thread-per-connection and reactor) made the
//! text protocol a cross-cutting contract: a verb added to one engine
//! but not the other, a reply shape the client never learned to parse,
//! or an `ERR` reason nobody documented are all silent drift. SL050
//! audits the contract from the code itself:
//!
//! 1. **Shared verb table.** The crate defining the shared dispatcher
//!    (`handle_line_into`) must also define a `WIRE_VERBS` const whose
//!    entries are exactly the dispatcher's match arms — the table both
//!    engines (and the docs) hang off.
//! 2. **Engine parity.** Every configured engine file must route
//!    through `handle_line_into`, and no non-test code outside the
//!    dispatcher may match on a wire verb — a private second
//!    dispatcher is exactly the drift the shared function exists to
//!    prevent.
//! 3. **Client emitted ⊆ server handled.** Every verb a client `send`s
//!    must be a dispatcher arm.
//! 4. **Server replies ⊆ client parsed.** Every reply head the
//!    dispatcher (or its same-file helpers, one level) emits via
//!    `push_str` must have a non-test parse site (slice pattern,
//!    `strip_prefix`, `starts_with`, `Some(…)` comparison).
//! 5. **ERR reasons catalogued.** Every `ERR <reason>` literal must
//!    appear backticked in the protocol catalog (DESIGN.md §11).
//! 6. **Sim protocol mapped.** Every `OP_<NAME>` opcode in `procctl`
//!    must correspond to a verb or reply head — the binary sim
//!    protocol and the text protocol must describe the same requests.
//!
//! The rule no-ops when no `handle_line_into` definition is in scope,
//! so fixtures and single-file unit tests opt in by defining one.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Tok;
use crate::model::{FileModel, Func};
use crate::rules::{is_method, match_paren};
use crate::workspace::Config;
use crate::Diagnostic;

/// The shared dispatcher's required name.
const DISPATCH_FN: &str = "handle_line_into";
/// The shared verb table's required name.
const VERB_TABLE: &str = "WIRE_VERBS";

pub(crate) fn check(models: &[FileModel], config: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // One dispatcher definition per crate drives the audit for that
    // crate; no definition anywhere → the rule is silent.
    let mut seen_crates = BTreeSet::new();
    for m in models {
        if let Some(f) = m.functions.iter().find(|f| f.name == DISPATCH_FN) {
            if m.in_tests(f.body_start) || !seen_crates.insert(m.crate_name.clone()) {
                continue;
            }
            audit_crate(models, m, f, config, &mut diags);
        }
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    diags
}

#[allow(clippy::too_many_lines)]
fn audit_crate(
    models: &[FileModel],
    dm: &FileModel,
    df: &Func,
    config: &Config,
    diags: &mut Vec<Diagnostic>,
) {
    let krate = &dm.crate_name;
    let sl050 = |path: &str, line: u32, message: String| Diagnostic {
        rule: "SL050",
        path: path.to_string(),
        line,
        message,
    };

    // -- 1. Dispatcher arms vs the shared WIRE_VERBS table. ------------
    let verbs = arm_verbs(dm, df);
    let table = models
        .iter()
        .filter(|m| &m.crate_name == krate)
        .find_map(verb_table);
    match table {
        None => diags.push(sl050(
            &dm.path,
            df.line,
            format!(
                "`{DISPATCH_FN}` dispatches {} verbs but crate `{krate}` defines no \
                 `{VERB_TABLE}` const — hoist the verb set into the shared table both \
                 engines (and the docs) reference",
                verbs.len()
            ),
        )),
        Some((tpath, tline, listed)) => {
            for v in verbs.difference(&listed) {
                diags.push(sl050(
                    &tpath,
                    tline,
                    format!(
                        "`{DISPATCH_FN}` handles `{v}` but `{VERB_TABLE}` does not list \
                         it — the shared table no longer describes the dispatcher"
                    ),
                ));
            }
            for v in listed.difference(&verbs) {
                diags.push(sl050(
                    &tpath,
                    tline,
                    format!(
                        "`{VERB_TABLE}` lists `{v}` but `{DISPATCH_FN}` has no arm for \
                         it — a claimed verb the server answers `ERR malformed`"
                    ),
                ));
            }
        }
    }

    // -- 2. Engine parity. ---------------------------------------------
    for engine in &config.engine_paths {
        let Some(em) = models.iter().find(|m| m.path.ends_with(engine.as_str())) else {
            diags.push(sl050(
                &dm.path,
                df.line,
                format!("engine file `{engine}` is configured but not in the scan scope"),
            ));
            continue;
        };
        let routes =
            em.tokens.iter().enumerate().any(|(i, t)| {
                matches!(&t.tok, Tok::Ident(w) if w == DISPATCH_FN) && !em.in_tests(i)
            });
        if !routes {
            diags.push(sl050(
                &em.path,
                1,
                format!(
                    "engine `{engine}` never routes through `{DISPATCH_FN}` — the \
                     engines no longer share a dispatcher and verb drift is unchecked"
                ),
            ));
        }
    }
    for m in models.iter().filter(|m| &m.crate_name == krate) {
        for (i, t) in m.tokens.iter().enumerate() {
            let Tok::Literal(text) = &t.tok else { continue };
            let v = text.trim_matches('"');
            if !verbs.contains(v)
                || !arm_arrow(m, i)
                || m.in_tests(i)
                || (m.path == dm.path && i > df.body_start && i < df.body_end)
            {
                continue;
            }
            diags.push(sl050(
                &m.path,
                t.line,
                format!(
                    "match arm on wire verb `{v}` outside `{DISPATCH_FN}` — a second \
                     dispatcher reintroduces the engine-drift class the shared handler \
                     exists to prevent"
                ),
            ));
        }
    }

    // -- 3. Client emissions ⊆ dispatcher verbs. -----------------------
    for m in models.iter().filter(|m| &m.crate_name == krate) {
        for i in 0..m.tokens.len() {
            if !matches!(&m.tokens[i].tok, Tok::Ident(w) if w == "send")
                || !is_method(m, i)
                || !matches!(m.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                || m.in_tests(i)
            {
                continue;
            }
            let close = match_paren(m, i + 1);
            for j in i + 2..close.min(m.tokens.len()) {
                let Tok::Literal(text) = &m.tokens[j].tok else {
                    continue;
                };
                let Some(head) = caps_head(text) else {
                    continue;
                };
                if !verbs.contains(&head) {
                    diags.push(sl050(
                        &m.path,
                        m.tokens[j].line,
                        format!(
                            "client sends verb `{head}` but `{DISPATCH_FN}` has no arm \
                             for it — the server answers `ERR malformed` forever"
                        ),
                    ));
                }
            }
        }
    }

    // -- 4. Reply heads ⊆ client parse sites; 5. ERR reasons. ----------
    let replies = reply_literals(dm, df);
    let parsed = parse_heads(models, krate);
    let mut heads_seen = BTreeSet::new();
    for (text, line) in &replies {
        let Some(head) = caps_head(text) else {
            continue;
        };
        if heads_seen.insert(head.clone()) && !parsed.contains(&head) {
            diags.push(sl050(
                &dm.path,
                *line,
                format!(
                    "server reply head `{head}` has no non-test parse site in crate \
                     `{krate}` — clients cannot consume this reply shape"
                ),
            ));
        }
        if head == "ERR" {
            if let Some(reason) = word_after(text, "ERR") {
                if !config.counter_doc.contains(&format!("`{reason}`")) {
                    diags.push(sl050(
                        &dm.path,
                        *line,
                        format!(
                            "ERR reason `{reason}` is missing from the {} protocol \
                             catalog — clients key downgrade behavior off these strings",
                            config.counter_doc_name
                        ),
                    ));
                }
            }
        }
    }

    // -- 6. Sim opcodes map into the text protocol. --------------------
    let mut heads: BTreeSet<String> = verbs.clone();
    heads.extend(heads_seen);
    let mut seen_ops = BTreeSet::new();
    for m in models.iter().filter(|m| m.crate_name == "procctl") {
        for (i, t) in m.tokens.iter().enumerate() {
            let Tok::Ident(w) = &t.tok else { continue };
            let Some(name) = w.strip_prefix("OP_") else {
                continue;
            };
            if name.is_empty() || m.in_tests(i) || !seen_ops.insert(name.to_string()) {
                continue;
            }
            if !heads.contains(name) {
                diags.push(sl050(
                    &m.path,
                    t.line,
                    format!(
                        "sim opcode `{w}` has no counterpart verb or reply head in the \
                         text protocol — the two protocols no longer describe the same \
                         requests"
                    ),
                ));
            }
        }
    }
}

/// True when the literal at `i` is a match-arm pattern: next tokens are
/// `=` `>`.
fn arm_arrow(m: &FileModel, i: usize) -> bool {
    matches!(m.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('=')))
        && matches!(m.tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('>')))
}

/// The dispatcher's verb set: string-literal match arms in its body.
/// Tuple-pattern literals (`Some("cpus")`, `(Some("ALL"), None)`) are
/// not followed by `=>` and therefore excluded by construction.
fn arm_verbs(m: &FileModel, f: &Func) -> BTreeSet<String> {
    let mut verbs = BTreeSet::new();
    for i in f.body_start..f.body_end.min(m.tokens.len()) {
        if let Tok::Literal(text) = &m.tokens[i].tok {
            if arm_arrow(m, i) {
                let v = text.trim_matches('"');
                if !v.is_empty() {
                    verbs.insert(v.to_string());
                }
            }
        }
    }
    verbs
}

/// The `WIRE_VERBS` const's entries, with its site.
fn verb_table(m: &FileModel) -> Option<(String, u32, BTreeSet<String>)> {
    for (i, t) in m.tokens.iter().enumerate() {
        if !matches!(&t.tok, Tok::Ident(w) if w == VERB_TABLE) || m.in_tests(i) {
            continue;
        }
        // Scan past the `=` (skipping the `&[&str]` type's brackets) to
        // the initializer `[`, then collect its literals.
        let mut j = i + 1;
        while j < m.tokens.len() && !matches!(m.tokens[j].tok, Tok::Punct('=') | Tok::Punct(';')) {
            j += 1;
        }
        while j < m.tokens.len() && !matches!(m.tokens[j].tok, Tok::Punct('[') | Tok::Punct(';')) {
            j += 1;
        }
        if !matches!(m.tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
            continue;
        }
        let mut set = BTreeSet::new();
        let mut depth = 0isize;
        while j < m.tokens.len() {
            match &m.tokens[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Literal(text) => {
                    set.insert(text.trim_matches('"').to_string());
                }
                _ => {}
            }
            j += 1;
        }
        if !set.is_empty() {
            return Some((m.path.clone(), t.line, set));
        }
    }
    None
}

/// Literals the dispatcher writes to its reply buffer (`push_str`
/// arguments, including through `format!`), plus the same from its
/// same-file free-function callees, one level deep.
fn reply_literals(m: &FileModel, df: &Func) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut ranges = vec![(df.body_start, df.body_end)];
    let file_fns: BTreeMap<&str, &Func> =
        m.functions.iter().map(|f| (f.name.as_str(), f)).collect();
    for i in df.body_start..df.body_end.min(m.tokens.len()) {
        let Tok::Ident(w) = &m.tokens[i].tok else {
            continue;
        };
        if matches!(m.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) && !is_method(m, i)
        {
            if let Some(callee) = file_fns.get(w.as_str()) {
                if callee.name != df.name {
                    ranges.push((callee.body_start, callee.body_end));
                }
            }
        }
    }
    for (start, end) in ranges {
        for i in start..end.min(m.tokens.len()) {
            if !matches!(&m.tokens[i].tok, Tok::Ident(w) if w == "push_str")
                || !is_method(m, i)
                || !matches!(m.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
            {
                continue;
            }
            let close = match_paren(m, i + 1);
            for j in i + 2..close.min(m.tokens.len()) {
                if let Tok::Literal(text) = &m.tokens[j].tok {
                    out.push((text.trim_matches('"').to_string(), m.tokens[j].line));
                }
            }
        }
    }
    out
}

/// Non-test reply-parse sites across the crate: an ALL-CAPS literal in
/// a slice pattern (`["OK", e]`, preceded by `[`/`,`) or as the sole
/// argument of `strip_prefix`/`starts_with`/`Some`/`eq`.
fn parse_heads(models: &[FileModel], krate: &str) -> BTreeSet<String> {
    const PARSE_FNS: &[&str] = &["strip_prefix", "starts_with", "Some", "eq"];
    let mut heads = BTreeSet::new();
    for m in models.iter().filter(|m| m.crate_name == krate) {
        for (i, t) in m.tokens.iter().enumerate() {
            let Tok::Literal(text) = &t.tok else { continue };
            if m.in_tests(i) {
                continue;
            }
            let Some(head) = caps_head(text) else {
                continue;
            };
            let ctx = match m.tokens.get(i.wrapping_sub(1)).map(|t| &t.tok) {
                Some(Tok::Punct('[')) | Some(Tok::Punct(',')) => true,
                Some(Tok::Punct('(')) => matches!(
                    m.tokens.get(i.wrapping_sub(2)).map(|t| &t.tok),
                    Some(Tok::Ident(f)) if PARSE_FNS.contains(&f.as_str())
                ),
                _ => false,
            };
            if ctx {
                heads.insert(head);
            }
        }
    }
    heads
}

/// The literal's first word when it looks like a protocol head:
/// two-plus chars, ALL-CAPS (hyphens allowed). `"TARGET {t}…"` →
/// `TARGET`; format strings, key-value fragments, and prose return
/// `None`.
fn caps_head(literal: &str) -> Option<String> {
    let text = literal.trim_matches('"');
    let head: String = text
        .chars()
        .take_while(|c| c.is_ascii_uppercase() || *c == '-')
        .collect();
    let terminated = match text[head.len()..].chars().next() {
        None => true,
        Some(c) => c == ' ' || c == '\\',
    };
    (head.len() >= 2 && terminated).then_some(head)
}

/// The word after `prefix` in a reply literal, stripped of escapes:
/// `"ERR bad-nworkers\n"` → `bad-nworkers`.
fn word_after(literal: &str, prefix: &str) -> Option<String> {
    let text = literal.trim_matches('"');
    let rest = text.strip_prefix(prefix)?.trim_start();
    let word: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
        .collect();
    (!word.is_empty()).then_some(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse("f.rs", "native-rt", src);
        check(&[m], &Config::for_tests())
    }

    const GOOD: &str = r#"
pub const WIRE_VERBS: &[&str] = &["PING", "QUIT"];
fn reply_malformed(out: &mut String) { out.push_str("ERR malformed\n"); }
fn handle_line_into(line: &str, out: &mut String) {
    let mut fields = line.split_whitespace();
    match fields.next().unwrap_or("") {
        "PING" => out.push_str("PONG\n"),
        "QUIT" => out.push_str("OK\n"),
        _ => reply_malformed(out),
    }
}
fn client(c: &mut C) {
    c.send("PING\n");
    let line = c.read_line();
    match line.split_whitespace().collect::<Vec<_>>().as_slice() {
        ["PONG"] => {}
        ["OK"] => {}
        ["ERR", ..] => {}
        _ => {}
    }
}
"#;

    #[test]
    fn no_dispatcher_means_silence() {
        let d = run("fn other() { let x = 1; }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn conforming_protocol_is_clean_modulo_catalog() {
        let d = run(GOOD);
        // The only finding is the uncatalogued ERR reason — the test
        // config has an empty catalog.
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("ERR reason `malformed`"), "{d:?}");
        let mut cfg = Config::for_tests();
        cfg.counter_doc = "`malformed`".into();
        let m = FileModel::parse("f.rs", "native-rt", GOOD);
        let d = check(&[m], &cfg);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_table_and_table_drift_fire() {
        let d = run(r#"
fn handle_line_into(line: &str, out: &mut String) {
    match line { "PING" => out.push_str("OK\n"), _ => {} }
}
fn client(c: &mut C) { c.send("PING\n"); if c.read_line().starts_with("OK") {} }
"#);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no `WIRE_VERBS`"), "{d:?}");

        let d = run(r#"
pub const WIRE_VERBS: &[&str] = &["PING", "STOP"];
fn handle_line_into(line: &str, out: &mut String) {
    match line { "PING" => out.push_str("OK\n"), "QUIT" => out.push_str("OK\n"), _ => {} }
}
fn client(c: &mut C) { c.send("PING\n"); if c.read_line().starts_with("OK") {} }
"#);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("`QUIT`")), "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("`STOP`")), "{d:?}");
    }

    #[test]
    fn rogue_dispatcher_and_unknown_emission_fire() {
        let d = run(r#"
pub const WIRE_VERBS: &[&str] = &["PING"];
fn handle_line_into(line: &str, out: &mut String) {
    match line { "PING" => out.push_str("OK\n"), _ => {} }
}
fn second_engine(line: &str, out: &mut String) {
    match line { "PING" => out.push_str("OK\n"), _ => {} }
}
fn client(c: &mut C) {
    c.send("PING\n");
    c.send("FLUSH now\n");
    if c.read_line().starts_with("OK") {}
}
"#);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(
            d.iter()
                .any(|d| d.message.contains("outside `handle_line_into`")),
            "{d:?}"
        );
        assert!(d.iter().any(|d| d.message.contains("`FLUSH`")), "{d:?}");
    }

    #[test]
    fn unparsed_reply_head_fires() {
        let d = run(r#"
pub const WIRE_VERBS: &[&str] = &["PING"];
fn handle_line_into(line: &str, out: &mut String) {
    match line { "PING" => out.push_str("GRANTED 1\n"), _ => {} }
}
fn client(c: &mut C) { c.send("PING\n"); let _ = c.read_line(); }
"#);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`GRANTED`"), "{d:?}");
    }

    #[test]
    fn test_mod_parse_sites_do_not_count() {
        let d = run(r#"
pub const WIRE_VERBS: &[&str] = &["PING"];
fn handle_line_into(line: &str, out: &mut String) {
    match line { "PING" => out.push_str("PONG\n"), _ => {} }
}
fn client(c: &mut C) { c.send("PING\n"); let _ = c.read_line(); }
mod tests {
    fn parses() { assert!("PONG x".starts_with("PONG")); }
}
"#);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`PONG`"), "{d:?}");
    }

    #[test]
    fn unmapped_sim_opcode_fires() {
        let server = FileModel::parse("s.rs", "native-rt", GOOD);
        let sim = FileModel::parse(
            "p.rs",
            "procctl",
            "pub const OP_PING: u8 = 1;\npub const OP_DRAIN: u8 = 9;\n",
        );
        let mut cfg = Config::for_tests();
        cfg.counter_doc = "`malformed`".into();
        let d = check(&[server, sim], &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`OP_DRAIN`"), "{d:?}");
    }
}
