//! SL040 — undocumented `unsafe`.
//!
//! Every `unsafe` block, `unsafe impl`, and `unsafe fn` must carry a
//! `// SAFETY:` comment ending at most four lines above it (or sitting
//! on the same line). For `unsafe fn`, a `/// # Safety` doc section
//! also satisfies the rule — that is where the *caller's* obligations
//! belong. Unlike the concurrency rules this one runs in test code too:
//! an unjustified `unsafe` is exactly as unsound under `#[test]`.

use crate::lexer::Tok;
use crate::model::FileModel;
use crate::Diagnostic;

/// How close (in lines) the justifying comment must end to its `unsafe`.
const WINDOW: u32 = 4;

pub(crate) fn check(models: &[FileModel]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for m in models {
        for i in 0..m.tokens.len() {
            if !matches!(&m.tokens[i].tok, Tok::Ident(w) if w == "unsafe") {
                continue;
            }
            let line = m.tokens[i].line;
            let kind = match m.tokens.get(i + 1).map(|t| &t.tok) {
                Some(Tok::Ident(w)) if w == "impl" => "unsafe impl",
                Some(Tok::Ident(w)) if w == "fn" => "unsafe fn",
                Some(Tok::Ident(w)) if w == "extern" || w == "trait" => "unsafe item",
                _ => "unsafe block",
            };
            let documented = m.comments.iter().any(|c| {
                let near = (c.end_line <= line && line - c.end_line <= WINDOW)
                    || (c.start_line <= line && c.end_line >= line);
                near && (c.text.contains("SAFETY:")
                    || (kind == "unsafe fn" && c.text.contains("# Safety")))
            });
            if !documented {
                diags.push(Diagnostic {
                    rule: "SL040",
                    path: m.path.clone(),
                    line,
                    message: format!(
                        "{kind} without a `// SAFETY:` comment — state the invariant that \
                         makes this sound (and who upholds it)"
                    ),
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = FileModel::parse("f.rs", "c", src);
        check(&[m])
    }

    #[test]
    fn documented_block_and_impl_are_clean() {
        let d = run(r#"
// SAFETY: slot is initialized before the flag is published.
let v = unsafe { slot.assume_init() };
// SAFETY: the buffer owns no interior references; Send is sound.
unsafe impl Send for Buffer {}
"#);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn undocumented_block_fires() {
        let d = run("let v = unsafe { slot.assume_init() };\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "SL040");
        assert!(d[0].message.contains("unsafe block"));
    }

    #[test]
    fn non_safety_comment_does_not_count() {
        let d = run(r#"
// this is fine, trust me
unsafe impl Sync for Buffer {}
"#);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn unsafe_fn_accepts_doc_safety_section() {
        let d = run(r#"
/// Reads the slot.
///
/// # Safety
/// Caller must ensure the slot was published.
pub unsafe fn read_slot() {}
"#);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_ignored() {
        let d = run(r#"
// unsafe in a comment is words, not code
let s = "unsafe { }";
"#);
        assert!(d.is_empty(), "{d:?}");
    }
}
