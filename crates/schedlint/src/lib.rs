//! `schedlint` — the workspace concurrency-invariant analyzer.
//!
//! The paper's whole failure mode is an invariant violation: a worker
//! preempted inside a spinlock-protected critical section stalls every
//! sibling. This reproduction now leans on a pile of informal rules —
//! which atomics publish data, which orderings are load-bearing, what
//! may happen while a `MutexGuard` is live, which counters the
//! observability stack expects — and this crate machine-checks them on
//! every CI run (`cargo run -p schedlint`).
//!
//! Seven rule families, each with positive/negative fixtures under
//! `tests/fixtures/`:
//!
//! | rule  | checks |
//! |-------|--------|
//! | SL001 | too-weak ordering on a registered atomic (`Relaxed` publish on a `handoff` atomic, sub-`SeqCst` on a Dekker-protocol atomic) |
//! | SL002 | over-strong ordering (`SeqCst` where `AcqRel` suffices on a `handoff` atomic, anything above `Relaxed` on a statistic) |
//! | SL003 | an atomic declared in a registry crate without a `sched-atomic(...)` annotation |
//! | SL004 | a `handoff` atomic with Release-side publishes but no Acquire-side observer anywhere in its crate (orphaned publish) |
//! | SL005 | a `seqcst` Dekker atomic whose non-test sites have only one half of the store-load handshake at SeqCst (one-sided downgrade) |
//! | SL010 | a cycle in the cross-function lock-order graph (potential deadlock) |
//! | SL011 | nested acquisition of the same lock name in one function (self-deadlock with non-reentrant `parking_lot` locks) |
//! | SL020 | a blocking call (sleep/park/UDS I/O/foreign condvar wait) while a `MutexGuard` is live — the static analogue of the paper's preempted-lock-holder pathology |
//! | SL021 | a guard live across a blocking call on *some* path of the [`cfg`] region tree (conditional drops the linear SL020 scan loses track of) |
//! | SL030 | a counter registered in `native_rt::stats` with no increment site, or missing from the DESIGN.md catalog; a dynamic registration with no `sched-counters` annotation |
//! | SL031 | a `sched-counter-exits(a\|b)`-annotated function with an exit path (early return, `?`, fall-through) that increments none of the named counters |
//! | SL040 | an `unsafe` block/impl/fn with no `// SAFETY:` comment |
//! | SL050 | wire-protocol conformance: shared `WIRE_VERBS` table = dispatcher arms, engine parity through `handle_line_into`, client emitted ⊆ handled, reply heads ⊆ parsed, ERR reasons catalogued, sim opcodes mapped |
//!
//! There is no `syn` in the offline build environment, so the analyzer
//! runs on its own minimal lexer ([`lexer`]) and token-pattern matching
//! — the same in-tree-substitute policy as `shims/*`. Flow-sensitive
//! rules (SL021/SL031) run on the [`cfg`] region tree built over that
//! token model. The blind spots this buys (macro-generated code,
//! aliased names, cross-crate dataflow) are listed in DESIGN.md §11;
//! triaged exceptions go to the checked-in `schedlint.toml` allowlist,
//! each with a justification and an optional `expires` date.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod allowlist;
pub mod cfg;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod sarif;
pub mod workspace;

pub use allowlist::{Allowlist, AllowlistError};
pub use model::{AtomicCategory, FileModel};
pub use workspace::{analyze_workspace, collect_files, Config};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule ID, e.g. `SL010`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Runs every rule over pre-parsed models. `config` carries the
/// registry-crate scope and the counter-catalog document.
pub fn run_rules(models: &[FileModel], config: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(rules::atomics::check(models, config));
    diags.extend(rules::hb::check(models));
    diags.extend(rules::locks::check(models));
    diags.extend(rules::counters::check(models, config));
    diags.extend(rules::unsafety::check(models));
    diags.extend(rules::proto::check(models, config));
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    diags
}
