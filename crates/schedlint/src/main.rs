//! `cargo run -p schedlint` — the CI gate.
//!
//! Exit codes: 0 clean (possibly with allowlisted findings), 1 findings
//! / stale or expired allowlist entries / new-vs-baseline findings /
//! blown time budget, 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use schedlint::allowlist::today_utc;
use schedlint::{analyze_workspace, sarif, Allowlist, Config};

struct Cli {
    root: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    budget_ms: Option<u64>,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
    Sarif,
}

const HELP: &str = "schedlint — workspace concurrency-invariant analyzer

USAGE: schedlint [OPTIONS]

  --root <dir>            workspace root (default: walk up from cwd)
  --format <text|json|sarif>
                          output format for the findings report
  --out <file>            write the report there instead of stdout
  --baseline <file>       gate only on findings whose fingerprint is
                          not in this previously emitted json/sarif
                          report (pre-existing findings still print)
  --write-baseline <file> write the current findings as a json baseline
                          and exit 0 (use to [re]bless the tree)
  --budget-ms <n>         fail if the analysis itself exceeds n ms

Scans crates/*/src/**/*.rs and enforces SL001..SL050 (see
crates/schedlint/src/lib.rs for the rule catalog). Findings are
filtered through the checked-in schedlint.toml allowlist; unused or
expired allowlist entries fail the run.";

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        root: None,
        format: Format::Text,
        out: None,
        baseline: None,
        write_baseline: None,
        budget_ms: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>| {
            args.next()
                .map(PathBuf::from)
                .ok_or(format!("{a} needs a value"))
        };
        match a.as_str() {
            "--root" => cli.root = Some(path_arg(&mut args)?),
            "--out" => cli.out = Some(path_arg(&mut args)?),
            "--baseline" => cli.baseline = Some(path_arg(&mut args)?),
            "--write-baseline" => cli.write_baseline = Some(path_arg(&mut args)?),
            "--format" => {
                cli.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        return Err(format!("--format must be text|json|sarif, got {other:?}"))
                    }
                }
            }
            "--budget-ms" => {
                cli.budget_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--budget-ms needs an integer")?,
                )
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("schedlint: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match cli.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| schedlint::workspace::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("schedlint: no workspace root found (no ancestor with crates/ + Cargo.toml)");
            return ExitCode::from(2);
        }
    };

    let config = Config::load(&root);
    let allowlist = match std::fs::read_to_string(root.join("schedlint.toml")) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("schedlint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Allowlist::default(),
    };
    let today = today_utc();
    let expired = allowlist.expired(&today);

    let started = Instant::now();
    let diags = analyze_workspace(&root, &config);
    let elapsed_ms = started.elapsed().as_millis() as u64;

    let total = diags.len();
    let (remaining, excused, unused) = allowlist.apply(diags);

    if let Some(path) = &cli.write_baseline {
        let doc = sarif::to_json(&remaining);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("schedlint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "schedlint: baseline with {} finding(s) written to {}",
            remaining.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Baseline diff: pre-existing fingerprints do not gate (they still
    // print, marked), new ones do.
    let known: Vec<String> = match &cli.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => sarif::baseline_fingerprints(&text),
            Err(e) => {
                eprintln!("schedlint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => Vec::new(),
    };
    let prints = sarif::fingerprints(&remaining);
    let gating: Vec<bool> = prints.iter().map(|fp| !known.contains(fp)).collect();
    let new_count = gating.iter().filter(|g| **g).count();

    let report = match cli.format {
        Format::Json => sarif::to_json(&remaining),
        Format::Sarif => sarif::to_sarif(&remaining),
        Format::Text => {
            let mut s = String::new();
            for (d, is_new) in remaining.iter().zip(&gating) {
                let tag = if cli.baseline.is_some() && !is_new {
                    " [baseline]"
                } else {
                    ""
                };
                s.push_str(&format!("{d}{tag}\n"));
            }
            s
        }
    };
    match &cli.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("schedlint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        None => print!("{report}"),
    }

    for e in &unused {
        eprintln!(
            "schedlint.toml:{}: unused allowlist entry ({}) — the finding it excused is \
             gone; remove the entry",
            e.line,
            e.describe()
        );
    }
    for e in &expired {
        eprintln!(
            "schedlint.toml:{}: allowlist entry expired {} (today is {today}): {} — \
             re-triage the finding or fix it at source",
            e.line,
            e.expires.as_deref().unwrap_or("?"),
            e.describe()
        );
    }
    let budget_blown = cli.budget_ms.is_some_and(|b| elapsed_ms > b);
    if budget_blown {
        eprintln!(
            "schedlint: analysis took {elapsed_ms} ms, over the --budget-ms {} gate",
            cli.budget_ms.unwrap_or(0)
        );
    }
    eprintln!(
        "schedlint: {} finding(s): {} failing ({} new vs baseline), {} allowlisted, \
         {} stale and {} expired allowlist entr(y/ies), {elapsed_ms} ms",
        total,
        remaining.len(),
        new_count,
        excused,
        unused.len(),
        expired.len()
    );
    let failing = if cli.baseline.is_some() {
        new_count
    } else {
        remaining.len()
    };
    if failing == 0 && unused.is_empty() && expired.is_empty() && !budget_blown {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
