//! `cargo run -p schedlint` — the CI gate.
//!
//! Exit codes: 0 clean (possibly with allowlisted findings), 1 findings
//! or stale allowlist entries, 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use schedlint::{analyze_workspace, Allowlist, Config};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("schedlint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "schedlint — workspace concurrency-invariant analyzer\n\n\
                     USAGE: schedlint [--root <workspace-root>]\n\n\
                     Scans crates/*/src/**/*.rs and enforces SL001..SL040 (see\n\
                     crates/schedlint/src/lib.rs for the rule catalog). Findings are\n\
                     filtered through the checked-in schedlint.toml allowlist; unused\n\
                     allowlist entries fail the run."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("schedlint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| schedlint::workspace::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("schedlint: no workspace root found (no ancestor with crates/ + Cargo.toml)");
            return ExitCode::from(2);
        }
    };

    let config = Config::load(&root);
    let allowlist = match std::fs::read_to_string(root.join("schedlint.toml")) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("schedlint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Allowlist::default(),
    };

    let diags = analyze_workspace(&root, &config);
    let total = diags.len();
    let (remaining, excused, unused) = allowlist.apply(diags);

    for d in &remaining {
        println!("{d}");
    }
    for e in &unused {
        println!(
            "schedlint.toml:{}: unused allowlist entry ({}) — the finding it excused is \
             gone; remove the entry",
            e.line,
            e.describe()
        );
    }
    eprintln!(
        "schedlint: {} finding(s): {} failing, {} allowlisted, {} stale allowlist entr(y/ies)",
        total,
        remaining.len(),
        excused,
        unused.len()
    );
    if remaining.is_empty() && unused.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
