//! Machine-readable output: SARIF 2.1.0, a compact JSON format, and
//! the baseline-diff machinery CI gates on.
//!
//! Fingerprints are the load-bearing piece. A finding's fingerprint is
//! FNV-1a-64 over `rule | path | message | k`, where `k` is the
//! finding's occurrence index among identical (rule, path, message)
//! triples. **Line numbers are deliberately excluded**: editing an
//! unrelated function above a known finding must not mint a "new"
//! finding, or `--baseline` mode degenerates into re-blessing the file
//! on every edit. The occurrence index keeps two identical findings in
//! one file distinct without reintroducing line sensitivity.
//!
//! The serializers are hand-rolled (no `serde` in the offline build);
//! [`validate_json`] is the well-formedness checker the tests run over
//! the emitted documents.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::Diagnostic;

/// SARIF tool metadata: every rule ID the analyzer can emit, in the
/// order they appear in the catalog (lib.rs table, DESIGN.md §11).
pub const RULE_IDS: &[&str] = &[
    "SL001", "SL002", "SL003", "SL004", "SL005", "SL010", "SL011", "SL020", "SL021", "SL030",
    "SL031", "SL040", "SL050",
];

/// FNV-1a 64-bit over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprints for `diags`, index-aligned. Line-insensitive;
/// see the module docs for why.
pub fn fingerprints(diags: &[Diagnostic]) -> Vec<String> {
    let mut occurrence: BTreeMap<(&str, &str, &str), u32> = BTreeMap::new();
    diags
        .iter()
        .map(|d| {
            let k = occurrence
                .entry((d.rule, d.path.as_str(), d.message.as_str()))
                .or_insert(0);
            let key = format!("{}|{}|{}|{k}", d.rule, d.path, d.message);
            *k += 1;
            format!("{:016x}", fnv1a(key.as_bytes()))
        })
        .collect()
}

/// JSON string escaping per RFC 8259 (quotes, backslash, control
/// characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The compact native format:
/// `{"findings":[{rule,path,line,message,fingerprint}, …]}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let prints = fingerprints(diags);
    let mut out = String::from("{\"findings\":[");
    for (i, (d, fp)) in diags.iter().zip(&prints).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\
             \"fingerprint\":\"{}\"}}",
            d.rule,
            esc(&d.path),
            d.line,
            esc(&d.message),
            fp
        );
    }
    out.push_str("]}\n");
    out
}

/// A minimal valid SARIF 2.1.0 log: one run, the full rule table in
/// `tool.driver`, one `result` per finding with a `partialFingerprints`
/// entry under the key `schedlint/v1`.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let prints = fingerprints(diags);
    let mut out = String::new();
    out.push_str(
        "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\
         \"tool\":{\"driver\":{\"name\":\"schedlint\",\
         \"informationUri\":\"https://example.invalid/schedlint\",\"rules\":[",
    );
    for (i, id) in RULE_IDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"id\":\"{id}\"}}");
    }
    out.push_str("]}},\"results\":[");
    for (i, (d, fp)) in diags.iter().zip(&prints).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}],\
             \"partialFingerprints\":{{\"schedlint/v1\":\"{}\"}}}}",
            d.rule,
            esc(&d.message),
            esc(&d.path),
            d.line.max(1),
            fp
        );
    }
    out.push_str("]}]}\n");
    out
}

/// Extracts the fingerprint set from a previously emitted JSON or SARIF
/// document — the committed baseline. Scans for the literal
/// `"fingerprint-ish key":"16-hex"` shapes both emitters produce, so a
/// baseline written in either format reads back.
pub fn baseline_fingerprints(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for key in ["\"fingerprint\":\"", "\"schedlint/v1\":\""] {
        let mut rest = text;
        while let Some(pos) = rest.find(key) {
            rest = &rest[pos + key.len()..];
            if let Some(end) = rest.find('"') {
                let fp = &rest[..end];
                if fp.len() == 16 && fp.chars().all(|c| c.is_ascii_hexdigit()) {
                    out.push(fp.to_string());
                }
                rest = &rest[end..];
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Checks that `text` is a single well-formed JSON value — the
/// offline substitute for schema validation, run by the tests over
/// every emitted document. Returns the first error, if any.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            *pos += 1;
            while *pos < b.len()
                && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *pos += 1;
            }
            Ok(())
        }
        _ => Err(format!("unexpected byte at {pos}")),
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                rule: "SL020",
                path: "crates/x/src/a.rs".into(),
                line: 10,
                message: "holds `mu` across \"sleep\"".into(),
            },
            Diagnostic {
                rule: "SL020",
                path: "crates/x/src/a.rs".into(),
                line: 40,
                message: "holds `mu` across \"sleep\"".into(),
            },
            Diagnostic {
                rule: "SL050",
                path: "crates/x/src/b.rs".into(),
                line: 3,
                message: "verb drift".into(),
            },
        ]
    }

    #[test]
    fn fingerprints_are_stable_and_line_insensitive() {
        let a = fingerprints(&diags());
        let mut moved = diags();
        for d in &mut moved {
            d.line += 7; // unrelated edit above every finding
        }
        let b = fingerprints(&moved);
        assert_eq!(a, b);
        // Identical triples stay distinct via the occurrence index.
        assert_ne!(a[0], a[1]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn emitted_documents_are_well_formed_and_round_trip() {
        let ds = diags();
        let json = to_json(&ds);
        let sarif = to_sarif(&ds);
        validate_json(&json).expect("json well-formed");
        validate_json(&sarif).expect("sarif well-formed");
        let fps = fingerprints(&ds);
        let mut expect = fps.clone();
        expect.sort();
        assert_eq!(baseline_fingerprints(&json), expect);
        assert_eq!(baseline_fingerprints(&sarif), expect);
    }

    #[test]
    fn sarif_has_required_shape() {
        let sarif = to_sarif(&diags());
        for needle in [
            "\"version\":\"2.1.0\"",
            "\"$schema\"",
            "\"name\":\"schedlint\"",
            "\"ruleId\":\"SL020\"",
            "\"startLine\":10",
            "\"partialFingerprints\"",
        ] {
            assert!(sarif.contains(needle), "missing {needle} in {sarif}");
        }
    }

    #[test]
    fn empty_run_is_valid() {
        validate_json(&to_json(&[])).unwrap();
        validate_json(&to_sarif(&[])).unwrap();
        assert!(baseline_fingerprints(&to_json(&[])).is_empty());
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2").is_err());
        assert!(validate_json("{} trailing").is_err());
    }
}
