// Fixture: SL040 clean — every unsafe states its invariant.
// SAFETY: Buffer owns its allocation and holds no interior references;
// sending it transfers unique ownership.
unsafe impl Send for Buffer {}

fn read(slot: &Slot) -> u64 {
    // SAFETY: the Release store of `ready` happens after init; our
    // Acquire load of `ready` proves the slot is initialized.
    unsafe { slot.value.assume_init() }
}

/// Reads through the pointer.
///
/// # Safety
/// `p` must be valid for reads and properly aligned.
pub unsafe fn raw_get(p: *const u64) -> u64 {
    // SAFETY: contract delegated to the caller (see # Safety above).
    unsafe { *p }
}
