// Fixture: SL040 — undocumented unsafe.
unsafe impl Send for Buffer {} // SL040: no SAFETY comment

fn read(slot: &Slot) -> u64 {
    // the value is probably fine here
    unsafe { slot.value.assume_init() } // SL040: comment is not a SAFETY one
}

pub unsafe fn raw_get(p: *const u64) -> u64 {
    *p
}
