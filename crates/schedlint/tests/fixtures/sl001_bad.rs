// Fixture: SL001 — too-weak orderings on registered atomics.
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct Shared {
    // sched-atomic(handoff): publishes the drained queue to stealers.
    drained: AtomicBool,
    // sched-atomic(seqcst): Dekker handshake with the producer.
    nsleepers: AtomicUsize,
}

fn publish(s: &Shared) {
    s.drained.store(true, Ordering::Relaxed); // SL001: Relaxed publish
}

fn consume(s: &Shared) -> bool {
    s.drained.load(Ordering::Relaxed) // SL001: Relaxed load of a hand-off
}

fn sleepy(s: &Shared) {
    s.nsleepers.fetch_add(1, Ordering::AcqRel); // SL001: Dekker needs SeqCst
}
