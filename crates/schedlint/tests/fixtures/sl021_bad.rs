// Fixture: SL021 — guard may-live across a blocking call on one path.
// The linear SL020 scan sees `drop(g)` and forgets the guard; only the
// branch-sensitive walk knows the drop happens on one arm.
use std::sync::Mutex;
use std::time::Duration;

struct State {
    mu: Mutex<u32>,
}

fn flush_or_wait(s: &State, flush: bool) {
    let g = s.mu.lock().unwrap();
    if flush {
        drop(g);
    }
    std::thread::sleep(Duration::from_millis(1)); // SL021: g live when !flush
}
