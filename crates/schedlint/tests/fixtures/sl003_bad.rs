// Fixture: SL003 — unannotated atomic in a registry crate.
use std::sync::atomic::AtomicUsize;

struct Pool {
    outstanding: AtomicUsize, // SL003: no sched-atomic(...) annotation
}
