// Fixture: SL030 clean — incremented, catalogued, annotated.
fn build(registry: &Registry) -> Stats {
    Stats {
        jobs_run: registry.counter("jobs_run"),
    }
}

fn dynamic(registry: &Registry) {
    // sched-counters: steal_tier_smt steal_tier_llc
    let tiers = make(|i| registry.counter(&format!("steal_tier_{}", NAMES[i])));
    keep(tiers);
}

fn bump(s: &Stats) {
    s.jobs_run.incr();
}
