// Fixture: SL005 — one-sided Dekker protocol (store side only).
use std::sync::atomic::{AtomicBool, Ordering};

struct Doorbell {
    // sched-atomic(seqcst): Dekker store-load with the poller's flag.
    ring: AtomicBool,
}

fn announce(d: &Doorbell) {
    d.ring.store(true, Ordering::SeqCst); // SL005: no SeqCst load side anywhere
}
