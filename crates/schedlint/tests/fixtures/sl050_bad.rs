// Fixture: SL050 — wire-protocol drift, three ways at once: the
// dispatcher handles a verb the table forgot (QUIT), the table claims a
// verb with no arm (STOP), and a reply head the client never learned to
// parse (GONE).
pub const WIRE_VERBS: &[&str] = &["PING", "STOP"];

fn handle_line_into(line: &str, out: &mut String) {
    match line.split_whitespace().next().unwrap_or("") {
        "PING" => out.push_str("PONG\n"),
        "QUIT" => out.push_str("GONE 0\n"),
        _ => {}
    }
}

fn client(c: &mut Chan) {
    c.send("PING\n");
    let line = c.read_line();
    if line.starts_with("PONG") {}
}
