// Fixture: SL005 clean — both Dekker sides are present at SeqCst.
use std::sync::atomic::{AtomicBool, Ordering};

struct Doorbell {
    // sched-atomic(seqcst): Dekker store-load with the poller's flag.
    ring: AtomicBool,
}

fn announce(d: &Doorbell) {
    d.ring.store(true, Ordering::SeqCst);
}

fn poll(d: &Doorbell) -> bool {
    d.ring.load(Ordering::SeqCst)
}
