// Fixture: SL010 — lock-order cycle across two functions.
fn submit(s: &Shared) {
    let q = s.queue.lock();
    let sl = s.sleepers.lock(); // queue -> sleepers
    wake(sl, q);
}

fn drain(s: &Shared) {
    let sl = s.sleepers.lock();
    let q = s.queue.lock(); // sleepers -> queue: cycle
    pull(q, sl);
}
