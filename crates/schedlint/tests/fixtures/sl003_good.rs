// Fixture: SL003 clean — the declaration states its role.
use std::sync::atomic::AtomicUsize;

struct Pool {
    // sched-atomic(handoff): final decrement publishes to wait_idle.
    outstanding: AtomicUsize,
}
