// Fixture: SL004 clean — the publish has an Acquire-side observer.
use std::sync::atomic::{AtomicBool, Ordering};

struct Drain {
    // sched-atomic(handoff): requests the worker drain its queue.
    requested: AtomicBool,
}

fn request(d: &Drain) {
    d.requested.store(true, Ordering::Release);
}

fn requested(d: &Drain) -> bool {
    d.requested.load(Ordering::Acquire)
}
