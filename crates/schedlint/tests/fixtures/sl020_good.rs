// Fixture: SL020 clean — block only after the guard dies.
fn sleepy(s: &Shared) {
    {
        let g = s.state.lock();
        touch(g);
    }
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn io_after_drop(s: &Shared, stream: &mut Stream) {
    let reply = {
        let g = s.state.lock();
        render(g)
    };
    stream.write_all(reply.as_bytes());
}

fn wait_releases_the_guard(s: &Shared) {
    let mut g = s.state.lock();
    while !g.ready {
        s.cv.wait(&mut g); // legal: wait releases the held guard
    }
}

fn temp_guard_is_gone(s: &Shared) {
    s.state.lock().counter += 1;
    std::thread::sleep(std::time::Duration::from_millis(1));
}
