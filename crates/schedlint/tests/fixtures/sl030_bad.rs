// Fixture: SL030 — conservation violations.
fn build(registry: &Registry) -> Stats {
    Stats {
        ghosts: registry.counter("ghosts"), // SL030: never incremented
        phantom: registry.counter("phantom_events"), // SL030: not in catalog
    }
}

fn dynamic(registry: &Registry) {
    let tiers = make(|i| registry.counter(&format!("tier_{}", i))); // SL030: no annotation
    keep(tiers);
}

fn bump(s: &Stats) {
    s.phantom.incr();
}
