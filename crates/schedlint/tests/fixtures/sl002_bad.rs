// Fixture: SL002 — over-strong orderings (hidden fence cost).
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct Shared {
    // sched-atomic(handoff): pairwise publish; AcqRel suffices.
    flag: AtomicBool,
    // sched-atomic(relaxed): pure statistic.
    hits: AtomicU64,
}

fn publish(s: &Shared) {
    s.flag.store(true, Ordering::SeqCst); // SL002: SeqCst on a pairwise hand-off
}

fn count(s: &Shared) {
    s.hits.fetch_add(1, Ordering::AcqRel); // SL002: fenced statistic
}

fn observe(s: &Shared) -> bool {
    s.flag.load(Ordering::Acquire) // pairs the publish, keeping SL004 quiet
}
