// Fixture: SL011 clean — the guard is dropped before re-acquisition.
fn sequential(s: &Shared) {
    let a = s.state.lock();
    drop(a);
    let b = s.state.lock();
    touch(b);
}

fn helper(s: &Shared) {
    let g = s.state.lock();
    touch(g);
}

fn calls_after_release(s: &Shared) {
    {
        let g = s.state.lock();
        touch(g);
    }
    helper(s);
}
