// Fixture: SL002 clean.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct Shared {
    // sched-atomic(handoff): pairwise publish; AcqRel suffices.
    flag: AtomicBool,
    // sched-atomic(relaxed): pure statistic.
    hits: AtomicU64,
}

fn publish(s: &Shared) {
    s.flag.store(true, Ordering::Release);
}

fn count(s: &Shared) {
    s.hits.fetch_add(1, Ordering::Relaxed);
}

fn observe(s: &Shared) -> bool {
    s.flag.load(Ordering::Acquire)
}
