// Fixture: SL011 — same-lock nesting, direct and one call deep.
fn direct(s: &Shared) {
    let a = s.state.lock();
    let b = s.state.lock(); // SL011: parking_lot is not reentrant
    use_both(a, b);
}

fn helper(s: &Shared) {
    let g = s.state.lock();
    touch(g);
}

fn through_call(s: &Shared) {
    let g = s.state.lock();
    helper(s); // SL011: helper re-locks state
}
