// Fixture: SL050 clean — table ⇔ arms, every client-sent verb has an
// arm, every reply head has a client parse site.
pub const WIRE_VERBS: &[&str] = &["PING", "QUIT"];

fn handle_line_into(line: &str, out: &mut String) {
    match line.split_whitespace().next().unwrap_or("") {
        "PING" => out.push_str("PONG\n"),
        "QUIT" => out.push_str("OK\n"),
        _ => out.push_str("OK\n"),
    }
}

fn client(c: &mut Chan) {
    c.send("PING\n");
    c.send("QUIT\n");
    let line = c.read_line();
    match line.split_whitespace().collect::<Vec<_>>().as_slice() {
        ["PONG"] => {}
        ["OK"] => {}
        _ => {}
    }
}
