// Fixture: SL001 clean — orderings match the declared categories.
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct Shared {
    // sched-atomic(handoff): publishes the drained queue to stealers.
    drained: AtomicBool,
    // sched-atomic(seqcst): Dekker handshake with the producer.
    nsleepers: AtomicUsize,
}

fn publish(s: &Shared) {
    s.drained.store(true, Ordering::Release);
}

fn consume(s: &Shared) -> bool {
    s.drained.load(Ordering::Acquire)
}

fn sleepy(s: &Shared) {
    s.nsleepers.fetch_add(1, Ordering::SeqCst);
}
