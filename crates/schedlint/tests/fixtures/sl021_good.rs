// Fixture: SL021 clean — the guard is dead on every path that blocks.
use std::sync::Mutex;
use std::time::Duration;

struct State {
    mu: Mutex<u32>,
}

fn drop_then_wait(s: &State, flush: bool) {
    let g = s.mu.lock().unwrap();
    if flush {
        let _ = *g;
    }
    drop(g);
    std::thread::sleep(Duration::from_millis(1));
}

fn wait_only_unlocked(s: &State, flush: bool) {
    let g = s.mu.lock().unwrap();
    if flush {
        drop(g);
        std::thread::sleep(Duration::from_millis(1));
    }
}
