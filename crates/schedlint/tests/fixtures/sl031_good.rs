// Fixture: SL031 clean — every exit path accounts the lookup, one of
// them through a helper whose every path increments (callee summary).
struct Counters {
    hits: Counter,
    misses: Counter,
}

fn account_miss(c: &Counters) {
    c.misses.incr();
}

// sched-counter-exits(hits|misses): every lookup is accounted.
fn lookup(c: &Counters, key: u32) -> Result<u32, ()> {
    if key == 0 {
        account_miss(c);
        return Err(());
    }
    c.hits.incr();
    Ok(key)
}
