// Fixture: SL010 clean — both paths take queue before sleepers.
fn submit(s: &Shared) {
    let q = s.queue.lock();
    let sl = s.sleepers.lock();
    wake(sl, q);
}

fn drain(s: &Shared) {
    let q = s.queue.lock();
    let sl = s.sleepers.lock();
    pull(q, sl);
}
