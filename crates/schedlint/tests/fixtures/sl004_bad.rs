// Fixture: SL004 — orphaned publish (Release store, no Acquire observer).
use std::sync::atomic::{AtomicBool, Ordering};

struct Drain {
    // sched-atomic(handoff): requests the worker drain its queue.
    requested: AtomicBool,
}

fn request(d: &Drain) {
    d.requested.store(true, Ordering::Release); // SL004: nobody acquires this
}
