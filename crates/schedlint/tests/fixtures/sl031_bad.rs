// Fixture: SL031 — an exit path skips every claimed counter.
struct Counters {
    hits: Counter,
    misses: Counter,
}

// sched-counter-exits(hits|misses): every lookup is accounted.
fn lookup(c: &Counters, key: u32) -> Result<u32, ()> {
    if key == 0 {
        return Err(()); // SL031: exits without touching hits or misses
    }
    c.hits.incr();
    Ok(key)
}
