// Fixture: SL020 — blocking while a guard is live.
fn sleepy(s: &Shared) {
    let g = s.state.lock();
    std::thread::sleep(std::time::Duration::from_millis(1)); // SL020
    touch(g);
}

fn io_under_lock(s: &Shared, stream: &mut Stream) {
    let g = s.state.lock();
    stream.write_all(b"REPORT\n"); // SL020: UDS I/O under the state lock
    touch(g);
}

fn foreign_wait(s: &Shared) {
    let g = s.state.lock();
    s.other_cv.wait(&mut something_else); // SL020: parks with g held
}
