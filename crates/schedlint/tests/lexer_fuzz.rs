//! Lexer/model robustness: the analyzer runs on every checkout, so
//! arbitrary byte soup, unbalanced delimiters, and pathological nesting
//! must never panic it or hang it — worst case it models garbage and
//! the rules go conservatively silent.

use proptest::prelude::*;
use schedlint::{run_rules, Config, FileModel};

proptest! {
    /// Arbitrary (lossy-decoded) byte soup lexes, models, and survives
    /// a full rule run.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let m = FileModel::parse("soup.rs", "native-rt", &src);
        let _ = run_rules(&[m], &Config::for_tests());
    }

    /// Rust-flavored punctuation soup — unbalanced braces, dangling
    /// string/char/comment openers, stray `=>` and `?` — terminates
    /// without panicking.
    #[test]
    fn delimiter_soup_never_panics(src in "[{}()\"'/*a-z0-9 =>;?!#._-]{0,200}") {
        let m = FileModel::parse("soup.rs", "native-rt", &src);
        let _ = run_rules(&[m], &Config::for_tests());
    }

    /// Deeply nested block comments (the lexer counts nesting) and
    /// `if`/brace towers far beyond the CFG's `MAX_DEPTH` degrade to a
    /// flat scan instead of overflowing the stack — closed or left
    /// dangling at EOF.
    #[test]
    fn pathological_nesting_never_panics(n in 1usize..1500, close in any::<bool>()) {
        let mut src = String::from("fn f(s: &S) { let g = s.mu.lock();\n");
        src.push_str(&"/*".repeat(n));
        if close {
            src.push_str(&"*/".repeat(n));
        }
        src.push_str(&"{ if x ".repeat(n));
        if close {
            src.push_str(&"}".repeat(n));
        }
        src.push_str("\n}");
        let m = FileModel::parse("deep.rs", "native-rt", &src);
        let _ = run_rules(&[m], &Config::for_tests());
    }
}
