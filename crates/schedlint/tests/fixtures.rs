//! Fixture self-tests: every rule ID has a `bad` fixture that must fire
//! (with the expected count) and a `good` twin that must stay silent,
//! so a rule that silently stops matching fails CI the same way a rule
//! that over-matches does. Plus the self-run test: the workspace itself
//! must be clean modulo the checked-in allowlist.

use std::path::{Path, PathBuf};

use schedlint::{analyze_workspace, run_rules, Allowlist, Config, FileModel};

fn fixture(name: &str) -> FileModel {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    // Fixtures pose as native-rt sources so registry-scoped rules apply.
    FileModel::parse(name, "native-rt", &src)
}

fn config() -> Config {
    let mut cfg = Config::for_tests();
    // The catalog for fixture purposes: what sl030_good registers, plus
    // `ghosts` (so sl030_bad's `ghosts` finding is the increment one,
    // not a catalog one) — but NOT `phantom_events` or `tier_*`.
    cfg.counter_doc = "`jobs_run` `steal_tier_smt` `steal_tier_llc` `ghosts`".to_string();
    cfg
}

/// Runs the analyzer over one fixture and returns the rule IDs fired.
fn rules_fired(name: &str) -> Vec<&'static str> {
    let diags = run_rules(&[fixture(name)], &config());
    diags.iter().map(|d| d.rule).collect()
}

fn assert_fires(name: &str, rule: &str, times: usize) {
    let fired = rules_fired(name);
    let hits = fired.iter().filter(|r| **r == rule).count();
    assert_eq!(
        hits, times,
        "{name}: expected {rule} x{times}, got {fired:?}"
    );
    let others: Vec<_> = fired.iter().filter(|r| **r != rule).collect();
    assert!(
        others.is_empty(),
        "{name}: unexpected extra findings {others:?}"
    );
}

fn assert_clean(name: &str) {
    let fired = rules_fired(name);
    assert!(fired.is_empty(), "{name}: expected clean, got {fired:?}");
}

#[test]
fn sl001_too_weak_ordering() {
    assert_fires("sl001_bad.rs", "SL001", 3);
    assert_clean("sl001_good.rs");
}

#[test]
fn sl002_over_strong_ordering() {
    assert_fires("sl002_bad.rs", "SL002", 2);
    assert_clean("sl002_good.rs");
}

#[test]
fn sl003_unannotated_atomic() {
    assert_fires("sl003_bad.rs", "SL003", 1);
    assert_clean("sl003_good.rs");
}

#[test]
fn sl003_is_scoped_to_registry_crates() {
    // The same unannotated atomic outside a registry crate is fine:
    // only native-rt's atomics are forced through the registry.
    let src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/sl003_bad.rs"),
    )
    .unwrap();
    let m = FileModel::parse("sl003_bad.rs", "workloads", &src);
    let diags = run_rules(&[m], &config());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn sl004_orphaned_publish() {
    assert_fires("sl004_bad.rs", "SL004", 1);
    assert_clean("sl004_good.rs");
}

#[test]
fn sl005_one_sided_dekker() {
    assert_fires("sl005_bad.rs", "SL005", 1);
    assert_clean("sl005_good.rs");
}

#[test]
fn sl010_lock_order_cycle() {
    assert_fires("sl010_bad.rs", "SL010", 1);
    assert_clean("sl010_good.rs");
}

#[test]
fn sl011_same_lock_nesting() {
    assert_fires("sl011_bad.rs", "SL011", 2);
    assert_clean("sl011_good.rs");
}

#[test]
fn sl020_blocking_under_lock() {
    assert_fires("sl020_bad.rs", "SL020", 3);
    assert_clean("sl020_good.rs");
}

#[test]
fn sl021_flow_sensitive_blocking() {
    assert_fires("sl021_bad.rs", "SL021", 1);
    assert_clean("sl021_good.rs");
}

#[test]
fn sl030_counter_conservation() {
    assert_fires("sl030_bad.rs", "SL030", 3);
    assert_clean("sl030_good.rs");
}

#[test]
fn sl031_exit_conservation() {
    assert_fires("sl031_bad.rs", "SL031", 1);
    assert_clean("sl031_good.rs");
}

#[test]
fn sl040_undocumented_unsafe() {
    assert_fires("sl040_bad.rs", "SL040", 3);
    assert_clean("sl040_good.rs");
}

#[test]
fn sl050_protocol_conformance() {
    assert_fires("sl050_bad.rs", "SL050", 3);
    assert_clean("sl050_good.rs");
}

/// The gate itself, as a test: the real workspace must be clean modulo
/// the checked-in allowlist, and the allowlist must carry no stale
/// entries. This is what `cargo run -p schedlint` enforces in CI; having
/// it in `cargo test` too means a plain test run catches regressions.
#[test]
fn workspace_is_clean_modulo_allowlist() {
    let root = workspace_root();
    let config = Config::load(&root);
    let diags = analyze_workspace(&root, &config);
    let allowlist = match std::fs::read_to_string(root.join("schedlint.toml")) {
        Ok(text) => Allowlist::parse(&text).expect("schedlint.toml must parse"),
        Err(_) => Allowlist::default(),
    };
    let (remaining, _excused, unused) = allowlist.apply(diags);
    assert!(
        remaining.is_empty(),
        "workspace has unallowlisted findings:\n{}",
        remaining
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        unused.is_empty(),
        "schedlint.toml has stale entries: {:?}",
        unused.iter().map(|e| e.describe()).collect::<Vec<_>>()
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/schedlint has a workspace root two levels up")
        .to_path_buf()
}
