//! Server behavior tests driven through the simulated kernel with
//! hand-written client processes (no threads package), exercising paths
//! the end-to-end suites don't: lost BYEs, duplicate registrations,
//! garbage on the wire, the Section-8 starvation limitation, and the
//! Section-7 partition-aware fix.

use desim::{SimDur, SimTime};
use procctl::{encode_poll, encode_register, Server, ServerConfig};
use simkernel::policy::{FifoRoundRobin, SpacePartition};
use simkernel::{Action, AppId, FnBehavior, Kernel, KernelConfig, PortId, Script, UserCtx, Wakeup};

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDur::from_secs(secs)
}

fn kernel_with_server(
    cpus: usize,
    cfg_mod: impl FnOnce(ServerConfig) -> ServerConfig,
) -> (Kernel, PortId) {
    let mut k = Kernel::new(
        KernelConfig::multimax().with_cpus(cpus),
        Box::new(FifoRoundRobin::new()),
    );
    let port = k.create_port();
    let cfg = cfg_mod(ServerConfig::new(port));
    k.spawn_root(AppId(999), 64, Box::new(Server::new(cfg)));
    (k, port)
}

/// A minimal client: registers, repeatedly polls, records the latest
/// target into shared state, computes meanwhile.
fn polling_client(
    server: PortId,
    reply: PortId,
    target_out: std::rc::Rc<std::cell::Cell<u32>>,
) -> Box<dyn simkernel::Behavior> {
    #[derive(PartialEq)]
    enum St {
        Reg,
        Compute,
        PollSend,
        PollRecv,
    }
    let mut st = St::Reg;
    Box::new(FnBehavior(move |w: Wakeup, ctx: &mut dyn UserCtx| {
        match (&st, w) {
            (St::Reg, Wakeup::Start) => Action::Send(server, encode_register(ctx.my_pid(), reply)),
            (St::Reg, Wakeup::Sent) => {
                st = St::Compute;
                Action::Compute(SimDur::from_millis(500))
            }
            (St::Compute, Wakeup::ComputeDone) => {
                st = St::PollSend;
                Action::Send(server, encode_poll(ctx.my_pid(), reply))
            }
            (St::PollSend, Wakeup::Sent) => {
                st = St::PollRecv;
                Action::Recv(reply)
            }
            (St::PollRecv, Wakeup::Received(m)) => {
                if let Some(tgt) = procctl::decode_target(&m) {
                    target_out.set(tgt);
                }
                st = St::Compute;
                Action::Compute(SimDur::from_millis(500))
            }
            (_, other) => panic!("client: unexpected {other:?}"),
        }
    }))
}

/// A client whose root spawns `children` compute processes (so the server
/// sees a multi-process application via the parent-pid rule), then polls
/// forever, recording the latest target.
fn multi_proc_client(
    server: PortId,
    reply: PortId,
    children: u32,
    target_out: std::rc::Rc<std::cell::Cell<u32>>,
) -> Box<dyn simkernel::Behavior> {
    let mut spawned = 0;
    let mut registered = false;
    Box::new(FnBehavior(
        move |w: Wakeup, ctx: &mut dyn UserCtx| match w {
            Wakeup::Start => Action::Send(server, encode_register(ctx.my_pid(), reply)),
            Wakeup::Sent if !registered => {
                registered = true;
                if children > 0 {
                    Action::Spawn(
                        Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(30))])),
                        64,
                    )
                } else {
                    Action::Compute(SimDur::from_secs(1))
                }
            }
            Wakeup::Spawned(_) => {
                spawned += 1;
                if spawned < children {
                    Action::Spawn(
                        Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(30))])),
                        64,
                    )
                } else {
                    Action::Compute(SimDur::from_secs(1))
                }
            }
            Wakeup::ComputeDone => Action::Send(server, encode_poll(ctx.my_pid(), reply)),
            Wakeup::Sent => Action::Recv(reply),
            Wakeup::Received(m) => {
                if let Some(t) = procctl::decode_target(&m) {
                    target_out.set(t);
                }
                Action::Compute(SimDur::from_secs(1))
            }
            other => panic!("multi-proc client: unexpected {other:?}"),
        },
    ))
}

#[test]
fn lost_bye_does_not_leak_shares() {
    // App A registers and dies without BYE; app B must still get the whole
    // machine once A's processes are gone.
    let (mut k, server) = kernel_with_server(8, |c| c);
    let reply_a = k.create_port();
    // A: register, compute briefly, exit. No BYE.
    k.spawn_root(
        AppId(0),
        64,
        Box::new(FnBehavior(
            move |w: Wakeup, ctx: &mut dyn UserCtx| match w {
                Wakeup::Start => Action::Send(server, encode_register(ctx.my_pid(), reply_a)),
                Wakeup::Sent => Action::Compute(SimDur::from_millis(100)),
                Wakeup::ComputeDone => Action::Exit,
                other => panic!("unexpected {other:?}"),
            },
        )),
    );
    let reply_b = k.create_port();
    let b_target = std::rc::Rc::new(std::cell::Cell::new(0));
    // B has 8 processes; if A's dead registration leaked a share, B would
    // only be offered 4 of the 8 processors.
    k.spawn_root(
        AppId(1),
        64,
        multi_proc_client(server, reply_b, 7, b_target.clone()),
    );
    // Give the server a few sample intervals after A's death.
    k.run_until(t(6));
    assert_eq!(
        b_target.get(),
        8,
        "B should own the machine after A died (even without BYE)"
    );
}

#[test]
fn duplicate_registration_is_idempotent() {
    let (mut k, server) = kernel_with_server(8, |c| c);
    let reply = k.create_port();
    let target = std::rc::Rc::new(std::cell::Cell::new(0));
    let tgt = target.clone();
    // Register twice, then poll.
    let mut step_n = 0;
    k.spawn_root(
        AppId(0),
        64,
        Box::new(FnBehavior(move |w: Wakeup, ctx: &mut dyn UserCtx| {
            step_n += 1;
            match (step_n, w) {
                (1, Wakeup::Start) => Action::Send(server, encode_register(ctx.my_pid(), reply)),
                (2, Wakeup::Sent) => Action::Send(server, encode_register(ctx.my_pid(), reply)),
                (3, Wakeup::Sent) => Action::Compute(SimDur::from_secs(2)),
                (4, Wakeup::ComputeDone) => Action::Send(server, encode_poll(ctx.my_pid(), reply)),
                (5, Wakeup::Sent) => Action::Recv(reply),
                (6, Wakeup::Received(m)) => {
                    tgt.set(procctl::decode_target(&m).expect("target"));
                    Action::Compute(SimDur::from_secs(2))
                }
                (_, Wakeup::ComputeDone) => Action::Exit,
                (_, other) => panic!("unexpected {other:?}"),
            }
        })),
    );
    k.run_until(t(4));
    // A single one-process application: capped at its process count, 1.
    assert_eq!(
        target.get(),
        1,
        "duplicate registration distorted the share"
    );
}

#[test]
fn garbage_on_the_wire_is_survivable() {
    let (mut k, server) = kernel_with_server(8, |c| c);
    // A vandal floods the request port with nonsense.
    k.spawn_root(
        AppId(5),
        64,
        Box::new(Script::new(vec![
            Action::Send(server, vec![]),
            Action::Send(server, vec![9999, 1, 2, 3, 4, 5]),
            Action::Send(server, vec![2 /* POLL */, u64::MAX, u64::MAX]),
        ])),
    );
    // A legitimate client must still be served.
    let reply = k.create_port();
    let target = std::rc::Rc::new(std::cell::Cell::new(0));
    k.spawn_root(AppId(0), 64, polling_client(server, reply, target.clone()));
    k.run_until(t(5));
    // A one-process application is capped at 1; the point is that the
    // server answered at all (0 = never replied = wedged).
    assert_eq!(target.get(), 1, "server wedged by malformed requests");
}

#[test]
fn section8_greedy_uncontrolled_starves_controlled() {
    // The paper's admitted limitation: a 16-process uncontrolled
    // application on a 16-CPU machine leaves the controlled application a
    // target of 1.
    let (mut k, server) = kernel_with_server(16, |c| c);
    for _ in 0..16 {
        k.spawn_root(
            AppId(7),
            64,
            Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(30))])),
        );
    }
    let reply = k.create_port();
    let target = std::rc::Rc::new(std::cell::Cell::new(0));
    k.spawn_root(AppId(0), 64, polling_client(server, reply, target.clone()));
    k.run_until(t(5));
    assert_eq!(
        target.get(),
        1,
        "expected the Section-8 starvation (target floor)"
    );
}

#[test]
fn section7_reservation_restores_fair_share() {
    // Same greedy neighbor, but the kernel space-partitions and the server
    // runs partition-aware with an 8-CPU reservation: the controlled
    // application gets its region regardless.
    let mut k = Kernel::new(
        KernelConfig::multimax().with_cpus(16),
        Box::new(SpacePartition::new()),
    );
    let port = k.create_port();
    let cfg = ServerConfig::new(port).with_reserved_cpus(8);
    k.spawn_root(AppId(999), 64, Box::new(Server::new(cfg)));
    for _ in 0..16 {
        k.spawn_root(
            AppId(7),
            64,
            Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(30))])),
        );
    }
    let reply = k.create_port();
    let target = std::rc::Rc::new(std::cell::Cell::new(0));
    // The client "application" here is one process; its cap is 1, so to see
    // the region size we register a multi-process app via parentage: spawn
    // 8 children that just compute, under the registered root.
    let tgt = target.clone();
    let mut stage = 0;
    k.spawn_root(
        AppId(0),
        64,
        Box::new(FnBehavior(move |w: Wakeup, ctx: &mut dyn UserCtx| {
            stage += 1;
            match (stage, w) {
                (1, Wakeup::Start) => Action::Send(port, encode_register(ctx.my_pid(), reply)),
                (s, Wakeup::Sent) if s <= 8 => Action::Spawn(
                    Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(20))])),
                    64,
                ),
                (s, Wakeup::Spawned(_)) if s <= 9 => {
                    if s == 9 {
                        Action::Compute(SimDur::from_secs(3))
                    } else {
                        Action::Spawn(
                            Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(20))])),
                            64,
                        )
                    }
                }
                (_, Wakeup::ComputeDone) => Action::Send(port, encode_poll(ctx.my_pid(), reply)),
                (_, Wakeup::Sent) => Action::Recv(reply),
                (_, Wakeup::Received(m)) => {
                    tgt.set(procctl::decode_target(&m).expect("target"));
                    Action::Compute(SimDur::from_secs(3))
                }
                (_, other) => panic!("unexpected {other:?}"),
            }
        })),
    );
    k.run_until(t(10));
    assert_eq!(
        target.get(),
        8,
        "reservation should shield the controlled application"
    );
}
