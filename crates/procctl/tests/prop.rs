//! Property tests for the partitioning algorithm.

use procctl::{partition, AppDemand};
use proptest::prelude::*;

fn demands() -> impl Strategy<Value = Vec<AppDemand>> {
    prop::collection::vec((0u32..64).prop_map(AppDemand::new), 0..12)
}

proptest! {
    /// Feasibility: each target is within [floor, cap], and the total never
    /// exceeds the available processors unless forced up by the
    /// one-process-per-app starvation floor.
    #[test]
    fn targets_feasible(cpus in 1u32..64, uncontrolled in 0u32..80, apps in demands()) {
        let t = partition(cpus, uncontrolled, &apps);
        prop_assert_eq!(t.len(), apps.len());
        let mut floor = 0u32;
        for (i, a) in apps.iter().enumerate() {
            prop_assert!(t[i] <= a.processes, "target above cap");
            if a.processes > 0 {
                prop_assert!(t[i] >= 1, "starvation: app {} got 0", i);
                floor += 1;
            } else {
                prop_assert_eq!(t[i], 0);
            }
        }
        let available = cpus.saturating_sub(uncontrolled);
        let total: u32 = t.iter().sum();
        prop_assert!(total <= available.max(floor), "total {} > available {} (floor {})", total, available, floor);
    }

    /// Work conservation: if demand can absorb the available processors,
    /// they are all handed out.
    #[test]
    fn work_conserving(cpus in 1u32..64, apps in demands()) {
        let t = partition(cpus, 0, &apps);
        let demand: u32 = apps.iter().map(|a| a.processes).sum();
        let total: u32 = t.iter().sum();
        prop_assert_eq!(total, demand.min(cpus).max(total.min(demand)),
            "handed out {} of {} available with demand {}", total, cpus, demand);
        // Restated plainly: total == min(cpus, demand) when the floor fits.
        let napps = apps.iter().filter(|a| a.processes > 0).count() as u32;
        if napps <= cpus {
            prop_assert_eq!(total, demand.min(cpus));
        }
    }

    /// Equal-weight fairness: among uncapped applications, shares differ by
    /// at most one processor (envy-freeness up to integer rounding).
    #[test]
    fn equal_weights_envy_free(cpus in 1u32..64, apps in demands()) {
        let t = partition(cpus, 0, &apps);
        let uncapped: Vec<u32> = apps.iter().zip(&t)
            .filter(|(a, &ti)| ti < a.processes)
            .map(|(_, &ti)| ti)
            .collect();
        if let (Some(&max), Some(&min)) = (uncapped.iter().max(), uncapped.iter().min()) {
            prop_assert!(max - min <= 1, "uncapped shares differ by {}: {:?}", max - min, t);
        }
    }

    /// Monotonicity: more available processors never shrinks anyone's
    /// share total.
    #[test]
    fn monotone_in_cpus(cpus in 1u32..63, uncontrolled in 0u32..16, apps in demands()) {
        let t1: u32 = partition(cpus, uncontrolled, &apps).iter().sum();
        let t2: u32 = partition(cpus + 1, uncontrolled, &apps).iter().sum();
        prop_assert!(t2 >= t1);
    }

    /// Determinism: the function is pure.
    #[test]
    fn deterministic(cpus in 1u32..64, uncontrolled in 0u32..16, apps in demands()) {
        prop_assert_eq!(partition(cpus, uncontrolled, &apps), partition(cpus, uncontrolled, &apps));
    }
}
