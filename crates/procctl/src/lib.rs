//! `procctl` — dynamic process control for multiprogrammed multiprocessors.
//!
//! This crate is the primary contribution of Tucker & Gupta (SOSP '89):
//! keep each parallel application's number of *runnable* processes equal to
//! the number of processors available to it, so that processes are never
//! preempted — avoiding busy-waiting on locks held by preempted processes,
//! producer/consumer stalls, context-switch overhead, and cache corruption.
//!
//! Three pieces, all implemented in user space:
//!
//! - [`partition`] — the server's fair-division algorithm (equal shares of
//!   the processors left over by uncontrollable load, capped by each
//!   application's process count, with a one-process starvation floor);
//! - [`Server`] — the centralized daemon that samples the kernel's runnable
//!   process list and answers applications' periodic `POLL`s;
//! - [`ClientControl`] — the application-side state consulted at every safe
//!   suspension point, deciding whether a worker suspends itself, resumes a
//!   colleague, or carries on.
//!
//! The decentralized variant the paper rejected is provided as
//! [`decentralized_target`] for the stability ablation.
//!
//! The crate is written against the `simkernel` substrate; the `native-rt`
//! crate reimplements the same client rule over real OS threads.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

mod client;
mod coalesce;
mod partition;
mod proto;
mod server;

pub use client::{decentralized_target, ClientControl, Decision};
pub use coalesce::RecomputeGate;
pub use partition::{
    assign_cpu_sets, partition, validate_cpus, validate_processes, AppDemand, SizeError, MAX_CPUS,
    MAX_PROCESSES,
};
pub use proto::{
    decode_request, decode_target, decode_target_cpus, encode_bye, encode_poll, encode_register,
    encode_register_weighted, encode_target, encode_target_cpus, Request,
};
pub use server::{classify, Classified, DecisionLog, Server, ServerConfig, SweepApp, SweepRecord};
