//! The centralized user-level server.
//!
//! A single daemon process (spawned like any other, requiring no kernel
//! modification) that:
//!
//! 1. periodically samples the kernel's runnable-process list (`rpstat`);
//! 2. classifies processes into *controllable* (their pid or parent pid is
//!    a registered application root — the paper identifies membership "by
//!    comparing it with each process' parent process ID") and
//!    *uncontrollable* (everything else, e.g. compilers, editors, daemons);
//! 3. partitions the processors left over by uncontrollable load equally
//!    among the registered applications (see [`crate::partition`]);
//! 4. answers each application's periodic `POLL` with its current target.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use desim::{SimDur, SimTime};
use simkernel::{Action, Behavior, Pid, PortId, ProcStat, UserCtx, Wakeup};

use crate::partition::{partition, AppDemand};
use crate::proto::{decode_request, encode_target, Request};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Mailbox on which the server receives requests.
    pub request_port: PortId,
    /// How often the server resamples `rpstat` and recomputes targets.
    pub sample_interval: SimDur,
    /// How long the server naps between request-queue polls.
    pub idle_nap: SimDur,
    /// Modeled CPU cost of one `rpstat` sweep.
    pub rpstat_cost: SimDur,
    /// Partition-aware mode (the paper's Section 7 composition): when the
    /// kernel space-partitions processors, the controlled applications own
    /// a fixed region of `n` processors regardless of uncontrollable load
    /// elsewhere, so the server partitions exactly `n` and stops
    /// subtracting uncontrolled runnable processes. `None` is the paper's
    /// Section 5 behaviour (whole machine minus uncontrolled load) — which
    /// suffers the Section 8 limitation that greedy uncontrolled
    /// applications starve controlled ones.
    pub reserved_cpus: Option<u32>,
}

impl ServerConfig {
    /// Paper-like defaults: resample every second, nap 50 ms between
    /// request polls, rpstat costs 500 us.
    pub fn new(request_port: PortId) -> Self {
        ServerConfig {
            request_port,
            sample_interval: SimDur::from_secs(1),
            idle_nap: SimDur::from_millis(50),
            rpstat_cost: SimDur::from_micros(500),
            reserved_cpus: None,
        }
    }

    /// Enables partition-aware mode with a fixed region of `n` processors.
    pub fn with_reserved_cpus(mut self, n: u32) -> Self {
        assert!(n >= 1, "a reservation needs at least one processor");
        self.reserved_cpus = Some(n);
        self
    }
}

#[derive(Clone, Copy, Debug)]
struct AppEntry {
    root: Pid,
    target: u32,
    weight: f64,
}

/// One registered application's inputs and output in a partition sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepApp {
    /// The application's root pid.
    pub root: Pid,
    /// Total (runnable + suspended) processes the sweep saw for it.
    pub processes: u32,
    /// Runnable processes the sweep saw for it.
    pub runnable: u32,
    /// Its share weight.
    pub weight: f64,
    /// Its target before this sweep.
    pub prev_target: u32,
    /// Its target after this sweep (equal to `prev_target` when the sweep
    /// saw no processes and kept the old value).
    pub target: u32,
}

/// One partition recomputation: the complete inputs the server acted on
/// and the per-application targets it produced.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRecord {
    /// When the sweep ran.
    pub time: SimTime,
    /// Processors the sweep partitioned (whole machine, or the reserved
    /// region in Section 7 mode).
    pub pool: u32,
    /// Runnable processes outside every registered application.
    pub uncontrolled_runnable: u32,
    /// Registered applications in registration order.
    pub apps: Vec<SweepApp>,
}

/// A shared handle onto the server's decision log. The server is moved
/// into the kernel at spawn, so callers clone this handle first (the
/// simulation is single-threaded; `Rc` suffices).
#[derive(Clone, Debug, Default)]
pub struct DecisionLog(Rc<RefCell<Vec<SweepRecord>>>);

impl DecisionLog {
    /// A copy of all sweeps recorded so far.
    pub fn records(&self) -> Vec<SweepRecord> {
        self.0.borrow().clone()
    }

    /// Number of sweeps recorded.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True when no sweep has run yet.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    fn push(&self, rec: SweepRecord) {
        self.0.borrow_mut().push(rec);
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SState {
    /// Waiting for the result of a request-queue poll.
    PollReq,
    /// Charging the rpstat sweep cost.
    Sampling,
    /// Waiting for a reply send to finish.
    Replying,
    /// Napping between polls.
    Napping,
}

/// The central server, as a simulated-process behavior.
#[derive(Debug)]
pub struct Server {
    cfg: ServerConfig,
    apps: Vec<AppEntry>,
    next_sample: SimTime,
    state: SState,
    /// Targets computed in the most recent sweep, for inspection/tests.
    last_uncontrolled: u32,
    log: DecisionLog,
}

impl Server {
    /// Creates the server behavior.
    pub fn new(cfg: ServerConfig) -> Self {
        Server {
            cfg,
            apps: Vec::new(),
            next_sample: SimTime::ZERO,
            state: SState::PollReq,
            last_uncontrolled: 0,
            log: DecisionLog::default(),
        }
    }

    /// A handle onto the decision log, for reading sweeps back after the
    /// server has been moved into the kernel.
    pub fn decision_log(&self) -> DecisionLog {
        self.log.clone()
    }

    fn target_of(&self, root: Pid, num_cpus: usize) -> u32 {
        self.apps
            .iter()
            .find(|a| a.root == root)
            .map_or(num_cpus as u32, |a| a.target)
    }

    fn resample(&mut self, ctx: &mut dyn UserCtx) {
        let stats = ctx.rpstat();
        let roots: Vec<Pid> = self.apps.iter().map(|a| a.root).collect();
        let summary = classify(&stats, ctx.my_pid(), &roots);
        self.last_uncontrolled = summary.uncontrolled_runnable;
        let demands: Vec<AppDemand> = self
            .apps
            .iter()
            .map(|a| AppDemand {
                processes: summary.processes.get(&a.root).copied().unwrap_or(0),
                weight: a.weight,
            })
            .collect();
        let (pool, uncontrolled) = match self.cfg.reserved_cpus {
            // Section 7: the kernel partition shields the region; greedy
            // uncontrolled load outside it is irrelevant.
            Some(n) => (n.min(ctx.num_cpus() as u32), 0),
            // Section 5: whole machine minus uncontrolled runnable load.
            None => (ctx.num_cpus() as u32, summary.uncontrolled_runnable),
        };
        let targets = partition(pool, uncontrolled, &demands);
        let mut sweep_apps = Vec::with_capacity(self.apps.len());
        for (app, &t) in self.apps.iter_mut().zip(&targets) {
            let prev_target = app.target;
            // An application whose processes all exited keeps its last
            // target until it says BYE or disappears entirely.
            if summary.processes.contains_key(&app.root) {
                app.target = t;
            }
            sweep_apps.push(SweepApp {
                root: app.root,
                processes: summary.processes.get(&app.root).copied().unwrap_or(0),
                runnable: summary.runnable.get(&app.root).copied().unwrap_or(0),
                weight: app.weight,
                prev_target,
                target: app.target,
            });
        }
        self.log.push(SweepRecord {
            time: ctx.now(),
            pool,
            uncontrolled_runnable: summary.uncontrolled_runnable,
            apps: sweep_apps,
        });
    }
}

/// Result of classifying an rpstat snapshot against registered roots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Classified {
    /// Runnable processes not belonging to any registered application.
    pub uncontrolled_runnable: u32,
    /// Total (runnable + suspended) processes per registered root.
    pub processes: HashMap<Pid, u32>,
    /// Runnable processes per registered root.
    pub runnable: HashMap<Pid, u32>,
}

/// Classifies processes by registered root, using the paper's parent-pid
/// rule: a process belongs to application `r` if its pid is `r` or its
/// parent pid is `r`. The server's own process is excluded.
pub fn classify(stats: &[ProcStat], server_pid: Pid, roots: &[Pid]) -> Classified {
    let mut out = Classified::default();
    for s in stats {
        if s.pid == server_pid {
            continue;
        }
        let root = if roots.contains(&s.pid) {
            Some(s.pid)
        } else {
            s.parent.filter(|p| roots.contains(p))
        };
        match root {
            Some(r) => {
                *out.processes.entry(r).or_insert(0) += 1;
                if s.runnable {
                    *out.runnable.entry(r).or_insert(0) += 1;
                }
            }
            None => {
                if s.runnable {
                    out.uncontrolled_runnable += 1;
                }
            }
        }
    }
    out
}

impl Behavior for Server {
    fn step(&mut self, wakeup: Wakeup, ctx: &mut dyn UserCtx) -> Action {
        let req = self.cfg.request_port;
        match (self.state, wakeup) {
            (_, Wakeup::Start) => {
                self.state = SState::PollReq;
                self.next_sample = ctx.now();
                Action::Poll(req)
            }
            (SState::PollReq, Wakeup::Polled(Some(msg))) => {
                match decode_request(&msg) {
                    Some(Request::Register {
                        root,
                        reply_port: _,
                        weight_milli,
                    }) => {
                        if !self.apps.iter().any(|a| a.root == root) {
                            self.apps.push(AppEntry {
                                root,
                                // Until the first sweep sees it, let the
                                // application use the whole machine.
                                target: ctx.num_cpus() as u32,
                                weight: f64::from(weight_milli) / 1_000.0,
                            });
                            // Make the next sweep happen promptly so the new
                            // application is partitioned in.
                            self.next_sample = ctx.now();
                        }
                        self.state = SState::PollReq;
                        Action::Poll(req)
                    }
                    Some(Request::Poll { root, reply_port }) => {
                        let t = self.target_of(root, ctx.num_cpus());
                        self.state = SState::Replying;
                        Action::Send(reply_port, encode_target(t))
                    }
                    Some(Request::Bye { root }) => {
                        self.apps.retain(|a| a.root != root);
                        self.next_sample = ctx.now();
                        self.state = SState::PollReq;
                        Action::Poll(req)
                    }
                    None => {
                        // Malformed request: drop it and keep serving.
                        self.state = SState::PollReq;
                        Action::Poll(req)
                    }
                }
            }
            (SState::PollReq, Wakeup::Polled(None)) => {
                if ctx.now() >= self.next_sample {
                    self.state = SState::Sampling;
                    Action::Compute(self.cfg.rpstat_cost)
                } else {
                    self.state = SState::Napping;
                    Action::Sleep(self.cfg.idle_nap)
                }
            }
            (SState::Sampling, Wakeup::ComputeDone) => {
                self.resample(ctx);
                self.next_sample = ctx.now() + self.cfg.sample_interval;
                self.state = SState::PollReq;
                Action::Poll(req)
            }
            (SState::Replying, Wakeup::Sent) => {
                self.state = SState::PollReq;
                Action::Poll(req)
            }
            (SState::Napping, Wakeup::Slept) => {
                self.state = SState::PollReq;
                Action::Poll(req)
            }
            (state, wakeup) => {
                unreachable!("server: unexpected wakeup {wakeup:?} in state {state:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::AppId;

    fn stat(pid: u32, parent: Option<u32>, runnable: bool) -> ProcStat {
        ProcStat {
            pid: Pid(pid),
            parent: parent.map(Pid),
            app: AppId(0),
            runnable,
        }
    }

    #[test]
    fn classify_by_parent_pid() {
        let stats = vec![
            stat(1, None, true),     // registered root
            stat(2, Some(1), true),  // its child
            stat(3, Some(1), false), // suspended child
            stat(4, None, true),     // uncontrolled
            stat(5, Some(4), true),  // uncontrolled child
            stat(99, None, true),    // the server itself
        ];
        let c = classify(&stats, Pid(99), &[Pid(1)]);
        assert_eq!(c.uncontrolled_runnable, 2);
        assert_eq!(c.processes[&Pid(1)], 3);
        assert_eq!(c.runnable[&Pid(1)], 2);
    }

    #[test]
    fn classify_without_roots() {
        let stats = vec![stat(1, None, true), stat(2, Some(1), false)];
        let c = classify(&stats, Pid(99), &[]);
        assert_eq!(c.uncontrolled_runnable, 1);
        assert!(c.processes.is_empty());
    }

    #[test]
    fn classify_excludes_server() {
        let c = classify(&[stat(99, None, true)], Pid(99), &[]);
        assert_eq!(c.uncontrolled_runnable, 0);
    }
}
