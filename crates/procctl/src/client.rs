//! Application-side process control.
//!
//! The client half of the scheme lives inside the threads package (the
//! paper modified Brown University Threads; our analog is the `uthreads`
//! crate). At every *safe suspension point* — between finishing one task
//! and dequeuing the next — a worker consults [`ClientControl::decide`]:
//! if the application has more runnable processes than its target, the
//! worker suspends itself; if fewer, it resumes a previously suspended
//! colleague. Every [`ClientControl::poll_interval`] some worker sends the
//! server a `POLL` and refreshes the target.
//!
//! The module also provides the *decentralized* variant the paper tried
//! first and rejected ("too inefficient... stability problems"): every
//! application samples `rpstat` itself and estimates its own fair share,
//! with no registry of which applications are controllable.

use std::collections::HashSet;

use desim::{SimDur, SimTime};
use simkernel::{AppId, Message, Pid, PortId, ProcStat};

use crate::proto;

/// What a worker at a safe suspension point should do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Too many runnable processes: the asking worker should suspend.
    SuspendSelf,
    /// Too few: the asking worker should resume a suspended colleague.
    Resume,
    /// The count matches the target: carry on.
    Continue,
}

/// Per-application process-control state (kept in the application's shared
/// memory; all workers consult it).
#[derive(Clone, Debug)]
pub struct ClientControl {
    /// The server's request mailbox.
    pub server_port: PortId,
    /// This application's reply mailbox.
    pub reply_port: PortId,
    /// The application's root process.
    pub root: Pid,
    /// How often to poll the server (6 s in the paper).
    pub poll_interval: SimDur,
    target: u32,
    next_poll: SimTime,
}

impl ClientControl {
    /// Creates control state. Until the first poll reply arrives the target
    /// is `initial_target` (typically the number of processes the
    /// application started with).
    pub fn new(
        server_port: PortId,
        reply_port: PortId,
        root: Pid,
        initial_target: u32,
        poll_interval: SimDur,
    ) -> Self {
        assert!(
            initial_target >= 1,
            "target must allow one runnable process"
        );
        ClientControl {
            server_port,
            reply_port,
            root,
            poll_interval,
            target: initial_target,
            next_poll: SimTime::ZERO,
        }
    }

    /// The latest target.
    pub fn target(&self) -> u32 {
        self.target
    }

    /// Directly sets the target (used by the decentralized variant and by
    /// tests).
    pub fn set_target(&mut self, t: u32) {
        self.target = t.max(1);
    }

    /// Whether a poll is due; the winning worker must call
    /// [`ClientControl::claim_poll`] before issuing the IPC so colleagues
    /// do not pile on.
    pub fn poll_due(&self, now: SimTime) -> bool {
        now >= self.next_poll
    }

    /// Claims the pending poll.
    pub fn claim_poll(&mut self, now: SimTime) {
        self.next_poll = now + self.poll_interval;
    }

    /// Encodes this application's registration message.
    pub fn register_msg(&self) -> Vec<u64> {
        proto::encode_register(self.root, self.reply_port)
    }

    /// Encodes this application's poll message.
    pub fn poll_msg(&self) -> Vec<u64> {
        proto::encode_poll(self.root, self.reply_port)
    }

    /// Encodes this application's goodbye message.
    pub fn bye_msg(&self) -> Vec<u64> {
        proto::encode_bye(self.root)
    }

    /// Applies a server reply; returns false for malformed messages.
    pub fn apply_reply(&mut self, msg: &Message) -> bool {
        match proto::decode_target(msg) {
            Some(t) => {
                self.target = t.max(1);
                true
            }
            None => false,
        }
    }

    /// The suspension rule from Section 5: "if the ideal number is less
    /// than the actual number, the process suspends itself; if the ideal
    /// number is greater than the actual number, the process wakes up a
    /// previously suspended process." `active` is the application's count
    /// of non-suspended workers. A worker never suspends below one active
    /// process (starvation guard).
    pub fn decide(&self, active: u32) -> Decision {
        if active > self.target && active > 1 {
            Decision::SuspendSelf
        } else if active < self.target {
            Decision::Resume
        } else {
            Decision::Continue
        }
    }
}

/// The decentralized estimator: with no central registry, an application
/// guesses its fair share as `num_cpus / (number of applications with any
/// runnable process)`, treating *every* application (including
/// single-process uncontrollable ones) as an equal claimant. This
/// mis-shares against sequential load and oscillates as other applications
/// suspend and resume — the instability that pushed the paper to the
/// centralized server.
pub fn decentralized_target(stats: &[ProcStat], _my_app: AppId, num_cpus: usize) -> u32 {
    let apps: HashSet<AppId> = stats.iter().filter(|s| s.runnable).map(|s| s.app).collect();
    let napps = apps.len().max(1);
    ((num_cpus / napps) as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(target: u32) -> ClientControl {
        let mut c = ClientControl::new(PortId(0), PortId(1), Pid(1), 16, SimDur::from_secs(6));
        c.set_target(target);
        c
    }

    #[test]
    fn decide_matches_paper_rule() {
        let c = cc(4);
        assert_eq!(c.decide(6), Decision::SuspendSelf);
        assert_eq!(c.decide(4), Decision::Continue);
        assert_eq!(c.decide(2), Decision::Resume);
    }

    #[test]
    fn never_suspend_last_process() {
        let c = cc(1);
        assert_eq!(c.decide(1), Decision::Continue);
        // Even with a (bogus) target of 1 and two active, one suspends.
        assert_eq!(c.decide(2), Decision::SuspendSelf);
    }

    #[test]
    fn poll_claims_are_exclusive() {
        let mut c = cc(4);
        let t0 = SimTime::ZERO + SimDur::from_secs(10);
        assert!(c.poll_due(t0));
        c.claim_poll(t0);
        assert!(!c.poll_due(t0));
        assert!(c.poll_due(t0 + SimDur::from_secs(6)));
    }

    #[test]
    fn reply_updates_target() {
        let mut c = cc(4);
        let msg = Message {
            from: Pid(0),
            body: crate::proto::encode_target(7),
        };
        assert!(c.apply_reply(&msg));
        assert_eq!(c.target(), 7);
        // Zero targets are clamped to the starvation floor.
        let msg0 = Message {
            from: Pid(0),
            body: crate::proto::encode_target(0),
        };
        assert!(c.apply_reply(&msg0));
        assert_eq!(c.target(), 1);
    }

    #[test]
    fn malformed_reply_ignored() {
        let mut c = cc(4);
        let msg = Message {
            from: Pid(0),
            body: vec![42, 42],
        };
        assert!(!c.apply_reply(&msg));
        assert_eq!(c.target(), 4);
    }

    #[test]
    fn decentralized_shares_equally_over_apps() {
        let stat = |pid: u32, app: u32, runnable: bool| ProcStat {
            pid: Pid(pid),
            parent: None,
            app: AppId(app),
            runnable,
        };
        let stats = vec![
            stat(1, 0, true),
            stat(2, 0, true),
            stat(3, 1, true),
            stat(4, 2, false), // no runnable process: not a claimant
        ];
        assert_eq!(decentralized_target(&stats, AppId(0), 16), 8);
        // Sequential load counts as a full claimant — the flaw.
        let with_seq = [stats, vec![stat(5, 3, true)]].concat();
        assert_eq!(decentralized_target(&with_seq, AppId(0), 16), 5);
    }
}
