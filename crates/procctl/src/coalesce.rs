//! Coalesced recomputation: a dirty-flag gate for expensive derived
//! state.
//!
//! The control server derives one expensive artifact from its
//! registration table — the partition (`effective targets` for every
//! application, via [`crate::partition`]) — but the events that
//! *invalidate* it (REGISTER, BYE, lease expiry, a weighted REPORT)
//! arrive in bursts: a fleet of N applications re-registering after a
//! server restart, or N reporting pollers firing back-to-back, would
//! naively trigger N recomputations when one (after the last
//! invalidation) produces the identical result.
//!
//! [`RecomputeGate`] separates *invalidation* (cheap, counted) from
//! *recomputation* (expensive, deferred to the next read): callers mark
//! the derived state dirty as events arrive, and the consumer asks
//! [`RecomputeGate::take_dirty`] exactly when it is about to read —
//! recomputing once per burst, not once per event. The gate keeps its
//! own tallies so the coalescing win is observable (the server exports
//! them as the `recompute_coalesced` counter).
//!
//! The gate is deliberately not a cache itself — it gates one; the
//! cached value lives with the owner, which knows its type and how to
//! rebuild it. This keeps the gate trivially reusable (the native UDS
//! server uses it for targets; a policy module could use it for
//! efficiency curves) and trivially testable.

/// A dirty-flag gate that coalesces bursts of invalidations into one
/// deferred recomputation. Starts dirty: the first read always
/// recomputes.
#[derive(Clone, Copy, Debug)]
pub struct RecomputeGate {
    dirty: bool,
    coalesced: u64,
    recomputes: u64,
}

impl Default for RecomputeGate {
    fn default() -> Self {
        Self::new()
    }
}

impl RecomputeGate {
    /// A fresh gate, born dirty (nothing has been computed yet).
    pub fn new() -> Self {
        RecomputeGate {
            dirty: true,
            coalesced: 0,
            recomputes: 0,
        }
    }

    /// Marks the derived state stale. Returns `true` when this
    /// invalidation was *coalesced* — absorbed into an already-pending
    /// recomputation — so a burst of N invalidations reports N−1
    /// coalesced events.
    pub fn invalidate(&mut self) -> bool {
        let coalesced = self.dirty;
        if coalesced {
            self.coalesced += 1;
        }
        self.dirty = true;
        coalesced
    }

    /// Consumes the dirty flag: `true` means the caller must recompute
    /// now (and the gate counts one recomputation); `false` means the
    /// cached artifact is still valid.
    pub fn take_dirty(&mut self) -> bool {
        if self.dirty {
            self.dirty = false;
            self.recomputes += 1;
            true
        } else {
            false
        }
    }

    /// Whether the derived state is currently stale (without consuming
    /// the flag).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Invalidations absorbed by an already-dirty gate since creation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Recomputations the gate has admitted since creation.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn born_dirty_first_read_recomputes_once() {
        let mut g = RecomputeGate::new();
        assert!(g.is_dirty());
        assert!(g.take_dirty());
        assert!(!g.take_dirty(), "second read must reuse the cache");
        assert_eq!(g.recomputes(), 1);
        assert_eq!(g.coalesced(), 0);
    }

    #[test]
    fn burst_of_invalidations_coalesces_to_one_recompute() {
        let mut g = RecomputeGate::new();
        assert!(g.take_dirty());
        // A burst of 5 back-to-back invalidations…
        let absorbed: u64 = (0..5).map(|_| u64::from(g.invalidate())).sum();
        assert_eq!(absorbed, 4, "N invalidations coalesce to N-1");
        assert_eq!(g.coalesced(), 4);
        // …admits exactly one recomputation.
        assert!(g.take_dirty());
        assert!(!g.take_dirty());
        assert_eq!(g.recomputes(), 2);
    }

    #[test]
    fn interleaved_reads_and_writes_never_miss_an_invalidation() {
        let mut g = RecomputeGate::new();
        assert!(g.take_dirty());
        assert!(!g.invalidate());
        assert!(g.take_dirty(), "write after read must re-dirty");
        assert!(!g.invalidate());
        assert!(g.invalidate(), "second write before a read coalesces");
        assert!(g.take_dirty());
        assert!(!g.take_dirty());
    }
}
