//! Wire protocol between applications and the central server.
//!
//! The paper's implementation used UMAX sockets; ours uses the simulated
//! kernel's mailboxes. Messages are small word vectors:
//!
//! - `REGISTER root_pid reply_port [weight_milli]` — sent once by an
//!   application's root process at startup ("the root process of the
//!   application sends a message to the central server notifying the
//!   server of the application's existence, and further telling it the
//!   process ID of the root process"). The optional fourth word is a
//!   share weight in thousandths (1000 = the paper's equal priority),
//!   generalizing the paper's "given that all three have the same
//!   priority" equal split.
//! - `POLL root_pid reply_port` — sent periodically (every 6 s in the
//!   paper) by some process of the application.
//! - `TARGET n [cpu…]` — the server's reply: how many runnable processes
//!   the application should have, optionally followed by the concrete
//!   processor ids assigned (the topology-aware CPU-set extension).
//!   Decoders written before the extension used an exact two-word match
//!   and dropped extended replies; [`decode_target`] now accepts the
//!   tail, and [`decode_target_cpus`] surfaces it.
//! - `BYE root_pid` — optional courtesy message when an application
//!   finishes, letting the server drop it before the next rpstat sweep.

use simkernel::{Message, Pid, PortId};

const OP_REGISTER: u64 = 1;
const OP_POLL: u64 = 2;
const OP_TARGET: u64 = 3;
const OP_BYE: u64 = 4;

/// A decoded client→server request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Application announcement.
    Register {
        /// Root process of the application.
        root: Pid,
        /// Where to send `TARGET` replies.
        reply_port: PortId,
        /// Share weight in thousandths (1000 = equal priority).
        weight_milli: u32,
    },
    /// Periodic target query.
    Poll {
        /// Root process of the application.
        root: Pid,
        /// Where to send the reply.
        reply_port: PortId,
    },
    /// The application has finished.
    Bye {
        /// Root process of the application.
        root: Pid,
    },
}

/// Encodes an equal-priority registration request.
pub fn encode_register(root: Pid, reply_port: PortId) -> Vec<u64> {
    vec![OP_REGISTER, u64::from(root.0), u64::from(reply_port.0)]
}

/// Encodes a registration request with an explicit share weight
/// (thousandths; 1000 = equal priority).
pub fn encode_register_weighted(root: Pid, reply_port: PortId, weight_milli: u32) -> Vec<u64> {
    vec![
        OP_REGISTER,
        u64::from(root.0),
        u64::from(reply_port.0),
        u64::from(weight_milli),
    ]
}

/// Encodes a poll request.
pub fn encode_poll(root: Pid, reply_port: PortId) -> Vec<u64> {
    vec![OP_POLL, u64::from(root.0), u64::from(reply_port.0)]
}

/// Encodes a goodbye.
pub fn encode_bye(root: Pid) -> Vec<u64> {
    vec![OP_BYE, u64::from(root.0)]
}

/// Encodes the server's target reply.
pub fn encode_target(target: u32) -> Vec<u64> {
    vec![OP_TARGET, u64::from(target)]
}

/// Encodes a target reply carrying the assigned CPU set (the
/// topology-aware extension). An empty `cpus` encodes identically to
/// [`encode_target`].
pub fn encode_target_cpus(target: u32, cpus: &[u32]) -> Vec<u64> {
    let mut body = Vec::with_capacity(2 + cpus.len());
    body.push(OP_TARGET);
    body.push(u64::from(target));
    body.extend(cpus.iter().map(|&c| u64::from(c)));
    body
}

/// Decodes a client→server request; `None` for malformed messages (the
/// server ignores them rather than crashing — defensive, as a real daemon
/// must be).
pub fn decode_request(msg: &Message) -> Option<Request> {
    match *msg.body.as_slice() {
        [OP_REGISTER, root, port] => Some(Request::Register {
            root: Pid(u32::try_from(root).ok()?),
            reply_port: PortId(u32::try_from(port).ok()?),
            weight_milli: 1_000,
        }),
        [OP_REGISTER, root, port, weight] => Some(Request::Register {
            root: Pid(u32::try_from(root).ok()?),
            reply_port: PortId(u32::try_from(port).ok()?),
            weight_milli: u32::try_from(weight).ok().filter(|&w| w > 0)?,
        }),
        [OP_POLL, root, port] => Some(Request::Poll {
            root: Pid(u32::try_from(root).ok()?),
            reply_port: PortId(u32::try_from(port).ok()?),
        }),
        [OP_BYE, root] => Some(Request::Bye {
            root: Pid(u32::try_from(root).ok()?),
        }),
        _ => None,
    }
}

/// Decodes a server→client target reply, tolerating (and ignoring) a
/// CPU-set tail — a count-only client keeps working against a server
/// that hands out sets.
pub fn decode_target(msg: &Message) -> Option<u32> {
    match *msg.body.as_slice() {
        [OP_TARGET, n, ..] => u32::try_from(n).ok(),
        _ => None,
    }
}

/// Decodes a target reply *with* its CPU set: `None` cpus when the
/// server sent the plain two-word reply (pre-extension), `Some` with the
/// assigned processors otherwise. A non-u32 id anywhere in the tail
/// makes the whole message malformed.
pub fn decode_target_cpus(msg: &Message) -> Option<(u32, Option<Vec<u32>>)> {
    match *msg.body.as_slice() {
        [OP_TARGET, n] => Some((u32::try_from(n).ok()?, None)),
        [OP_TARGET, n, ref cpus @ ..] => {
            let n = u32::try_from(n).ok()?;
            let cpus = cpus
                .iter()
                .map(|&c| u32::try_from(c).ok())
                .collect::<Option<Vec<u32>>>()?;
            Some((n, Some(cpus)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(body: Vec<u64>) -> Message {
        Message { from: Pid(9), body }
    }

    #[test]
    fn register_round_trip() {
        let m = msg(encode_register(Pid(5), PortId(2)));
        assert_eq!(
            decode_request(&m),
            Some(Request::Register {
                root: Pid(5),
                reply_port: PortId(2),
                weight_milli: 1_000,
            })
        );
    }

    #[test]
    fn weighted_register_round_trip() {
        let m = msg(encode_register_weighted(Pid(5), PortId(2), 3_000));
        assert_eq!(
            decode_request(&m),
            Some(Request::Register {
                root: Pid(5),
                reply_port: PortId(2),
                weight_milli: 3_000,
            })
        );
        // A zero weight is malformed (it would starve the application).
        let z = msg(encode_register_weighted(Pid(5), PortId(2), 0));
        assert_eq!(decode_request(&z), None);
    }

    #[test]
    fn poll_round_trip() {
        let m = msg(encode_poll(Pid(7), PortId(3)));
        assert_eq!(
            decode_request(&m),
            Some(Request::Poll {
                root: Pid(7),
                reply_port: PortId(3)
            })
        );
    }

    #[test]
    fn bye_round_trip() {
        let m = msg(encode_bye(Pid(1)));
        assert_eq!(decode_request(&m), Some(Request::Bye { root: Pid(1) }));
    }

    #[test]
    fn target_round_trip() {
        let m = msg(encode_target(12));
        assert_eq!(decode_target(&m), Some(12));
        assert_eq!(decode_target_cpus(&m), Some((12, None)));
    }

    #[test]
    fn target_cpus_round_trip_and_cross_version_tolerance() {
        let m = msg(encode_target_cpus(3, &[4, 5, 6]));
        assert_eq!(decode_target_cpus(&m), Some((3, Some(vec![4, 5, 6]))));
        // An old count-only decoder reads the same reply fine.
        assert_eq!(decode_target(&m), Some(3));
        // Empty set degenerates to the plain encoding.
        assert_eq!(encode_target_cpus(7, &[]), encode_target(7));
        // A garbage id in the tail poisons the whole message.
        let bad = msg(vec![OP_TARGET, 3, u64::MAX]);
        assert_eq!(decode_target_cpus(&bad), None);
    }

    #[test]
    fn malformed_messages_rejected() {
        assert_eq!(decode_request(&msg(vec![])), None);
        assert_eq!(decode_request(&msg(vec![99, 1, 2])), None);
        assert_eq!(decode_request(&msg(vec![OP_REGISTER])), None);
        assert_eq!(decode_target(&msg(vec![OP_POLL, 1])), None);
        // A pid that does not fit in u32 is malformed, not a panic.
        assert_eq!(decode_request(&msg(vec![OP_BYE, u64::MAX])), None);
    }
}
