//! The server's processor-partitioning algorithm.
//!
//! Section 5 of the paper: the server "determines the number of runnable
//! processes not belonging to controllable applications... subtracts this
//! from the number of processors in the system... then partitions these
//! processors among the applications fairly", with two provisos: an
//! application is never assigned more processors than it has processes, and
//! every application keeps at least one runnable process.
//!
//! The fair division with caps is a classic water-filling problem; we solve
//! it exactly by iterative redistribution, with an optional per-application
//! weight extension (the paper's "given that all three have the same
//! priority" aside generalized).

/// Largest machine size the control plane accepts. Bigger values are
/// assumed to be corruption (a garbled config or wire frame), not a real
/// machine: a 0-or-absurd `cpus` would otherwise flow into [`partition`]
/// and produce 0-targets that starve every registered application.
pub const MAX_CPUS: u32 = 4096;

/// Largest per-application process count the control plane accepts over
/// the wire (a `REGISTER` claiming more is rejected as malformed).
pub const MAX_PROCESSES: u32 = 1 << 20;

/// A control-plane size (cpus or processes) outside its sane range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SizeError {
    /// What was being validated (`"cpus"`, `"processes"`).
    pub what: &'static str,
    /// The offending value.
    pub value: u64,
    /// The inclusive upper bound.
    pub max: u64,
}

impl std::fmt::Display for SizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} must be in 1..={}, got {}",
            self.what, self.max, self.value
        )
    }
}

impl std::error::Error for SizeError {}

/// Validates a machine size before it reaches [`partition`].
pub fn validate_cpus(num_cpus: u32) -> Result<(), SizeError> {
    if num_cpus == 0 || num_cpus > MAX_CPUS {
        return Err(SizeError {
            what: "cpus",
            value: u64::from(num_cpus),
            max: u64::from(MAX_CPUS),
        });
    }
    Ok(())
}

/// Validates an application's claimed process count (wire-facing).
pub fn validate_processes(processes: u32) -> Result<(), SizeError> {
    if processes == 0 || processes > MAX_PROCESSES {
        return Err(SizeError {
            what: "processes",
            value: u64::from(processes),
            max: u64::from(MAX_PROCESSES),
        });
    }
    Ok(())
}

/// One controllable application, as the server sees it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppDemand {
    /// Total processes the application currently has (runnable or
    /// suspended) — the cap on how many processors it can use.
    pub processes: u32,
    /// Relative share weight (1.0 = equal priority).
    pub weight: f64,
}

impl AppDemand {
    /// An equal-priority application with `processes` processes.
    pub fn new(processes: u32) -> Self {
        AppDemand {
            processes,
            weight: 1.0,
        }
    }
}

/// Computes each controllable application's target number of runnable
/// processes.
///
/// `num_cpus` is the machine size; `uncontrolled` is the number of runnable
/// processes belonging to applications outside the scheme's control. The
/// result has one entry per element of `apps`, each at least 1 (unless the
/// application has no processes at all, in which case 0) and at most
/// `processes`.
///
/// # Examples
///
/// The paper's worked example (Section 5 / Figure 2): 8 processors, 2 used
/// by uncontrollable processes, three applications with 2, 3, and 3
/// processes:
///
/// ```
/// use procctl::{partition, AppDemand};
///
/// let t = partition(8, 2, &[AppDemand::new(2), AppDemand::new(3), AppDemand::new(3)]);
/// assert_eq!(t, vec![2, 2, 2]);
/// ```
pub fn partition(num_cpus: u32, uncontrolled: u32, apps: &[AppDemand]) -> Vec<u32> {
    let n = apps.len();
    if n == 0 {
        return Vec::new();
    }
    let available = num_cpus.saturating_sub(uncontrolled);

    // Start from the starvation floor: one process each (0 for empty apps).
    let mut targets: Vec<u32> = apps.iter().map(|a| u32::from(a.processes > 0)).collect();
    let floor: u32 = targets.iter().sum();
    let mut remaining = available.saturating_sub(floor);

    // Water-fill the remaining processors by weight, capped per app.
    // Each round distributes proportionally among apps with headroom;
    // integer rounding goes to the largest fractional remainders.
    loop {
        let headroom: Vec<usize> = (0..n).filter(|&i| targets[i] < apps[i].processes).collect();
        if remaining == 0 || headroom.is_empty() {
            break;
        }
        let wsum: f64 = headroom.iter().map(|&i| apps[i].weight.max(0.0)).sum();
        if wsum <= 0.0 {
            break;
        }
        let mut granted_any = false;
        // Ideal fractional grants for this round.
        let mut fractional: Vec<(usize, f64)> = headroom
            .iter()
            .map(|&i| {
                let ideal = remaining as f64 * apps[i].weight.max(0.0) / wsum;
                let room = (apps[i].processes - targets[i]) as f64;
                (i, ideal.min(room))
            })
            .collect();
        // Grant integer parts first.
        for &mut (i, ref mut f) in &mut fractional {
            let whole = (*f).floor() as u32;
            let grant = whole.min(remaining).min(apps[i].processes - targets[i]);
            if grant > 0 {
                targets[i] += grant;
                remaining -= grant;
                granted_any = true;
            }
            *f -= f64::from(grant);
        }
        // Then leftover single processors to the largest remainders.
        fractional.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders"));
        for (i, _) in fractional {
            if remaining == 0 {
                break;
            }
            if targets[i] < apps[i].processes {
                targets[i] += 1;
                remaining -= 1;
                granted_any = true;
            }
        }
        if !granted_any {
            break;
        }
    }
    targets
}

/// Assigns each application a *concrete* set of CPUs, not just a count:
/// consecutive, contiguous slices of `cpu_order` (a topology-linearized
/// CPU list — SMT siblings adjacent, then LLC groups, then sockets), one
/// slice per entry of `targets`, wrapping around when the floor-of-one
/// proviso oversubscribes the machine.
///
/// Contiguity is the point: an application's processes land on
/// cache-sharing neighbors, and because slice `i` starts at the sum of
/// targets `0..i`, a *shrink* of application `i` (earlier targets
/// unchanged) keeps a prefix of its previous block — the workers it
/// retains stay where their cache state is.
pub fn assign_cpu_sets(cpu_order: &[u32], targets: &[u32]) -> Vec<Vec<u32>> {
    if cpu_order.is_empty() {
        return targets.iter().map(|_| Vec::new()).collect();
    }
    let mut cursor = 0usize;
    targets
        .iter()
        .map(|&t| {
            (0..t)
                .map(|_| {
                    let cpu = cpu_order[cursor % cpu_order.len()];
                    cursor += 1;
                    cpu
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq_apps(ps: &[u32]) -> Vec<AppDemand> {
        ps.iter().map(|&p| AppDemand::new(p)).collect()
    }

    #[test]
    fn paper_worked_example() {
        // 8 CPUs, 2 uncontrolled, apps with 2/3/3 processes → 2/2/2.
        let t = partition(8, 2, &eq_apps(&[2, 3, 3]));
        assert_eq!(t, vec![2, 2, 2]);
    }

    #[test]
    fn single_app_gets_whole_machine() {
        let t = partition(16, 0, &eq_apps(&[24]));
        assert_eq!(t, vec![16]);
    }

    #[test]
    fn cap_at_process_count() {
        let t = partition(16, 0, &eq_apps(&[4]));
        assert_eq!(t, vec![4]);
    }

    #[test]
    fn excess_from_capped_apps_redistributes() {
        // 16 CPUs, apps with 2 and 30 processes: fair share would be 8/8,
        // but the small app can only use 2, so the big one gets 14.
        let t = partition(16, 0, &eq_apps(&[2, 30]));
        assert_eq!(t, vec![2, 14]);
    }

    #[test]
    fn every_app_keeps_one_process() {
        // More apps than processors: everyone still gets 1 (the paper's
        // no-starvation proviso), even though that oversubscribes.
        let t = partition(4, 0, &eq_apps(&[8, 8, 8, 8, 8, 8]));
        assert_eq!(t, vec![1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn uncontrolled_load_reduces_shares() {
        let t = partition(16, 8, &eq_apps(&[16, 16]));
        assert_eq!(t, vec![4, 4]);
    }

    #[test]
    fn uncontrolled_exceeding_machine_leaves_floor() {
        let t = partition(8, 20, &eq_apps(&[5, 5]));
        assert_eq!(t, vec![1, 1]);
    }

    #[test]
    fn empty_app_gets_zero() {
        let t = partition(8, 0, &eq_apps(&[0, 8]));
        assert_eq!(t, vec![0, 8]);
    }

    #[test]
    fn no_apps() {
        assert!(partition(8, 0, &[]).is_empty());
    }

    #[test]
    fn remainder_goes_somewhere() {
        // 16 CPUs, 3 equal apps: 16/3 = 5.33 → 6/5/5 in some order, total 16.
        let t = partition(16, 0, &eq_apps(&[24, 24, 24]));
        assert_eq!(t.iter().sum::<u32>(), 16);
        assert!(t.iter().all(|&x| x == 5 || x == 6));
    }

    #[test]
    fn weights_skew_shares() {
        let apps = vec![
            AppDemand {
                processes: 16,
                weight: 3.0,
            },
            AppDemand {
                processes: 16,
                weight: 1.0,
            },
        ];
        let t = partition(16, 0, &apps);
        assert_eq!(t.iter().sum::<u32>(), 16);
        assert!(t[0] > t[1], "weighted app should get more: {t:?}");
        assert_eq!(t[0], 12);
    }

    #[test]
    fn size_validation_bounds() {
        assert!(validate_cpus(1).is_ok());
        assert!(validate_cpus(MAX_CPUS).is_ok());
        assert_eq!(
            validate_cpus(0),
            Err(SizeError {
                what: "cpus",
                value: 0,
                max: u64::from(MAX_CPUS),
            })
        );
        assert!(validate_cpus(MAX_CPUS + 1).is_err());
        assert!(validate_processes(1).is_ok());
        assert!(validate_processes(0).is_err());
        assert!(validate_processes(MAX_PROCESSES + 1).is_err());
        let msg = validate_cpus(0).unwrap_err().to_string();
        assert!(msg.contains("cpus"), "error names the field: {msg}");
    }

    #[test]
    fn cpu_sets_are_contiguous_slices_of_the_order() {
        let order: Vec<u32> = (0..8).collect();
        let sets = assign_cpu_sets(&order, &[3, 2, 3]);
        assert_eq!(sets, vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7]]);
    }

    #[test]
    fn cpu_sets_respect_a_nontrivial_order() {
        // A topology order interleaving sockets' SMT pairs.
        let order = vec![0, 4, 1, 5, 2, 6, 3, 7];
        let sets = assign_cpu_sets(&order, &[4, 4]);
        assert_eq!(sets, vec![vec![0, 4, 1, 5], vec![2, 6, 3, 7]]);
    }

    #[test]
    fn oversubscription_wraps_around() {
        let order: Vec<u32> = (0..2).collect();
        let sets = assign_cpu_sets(&order, &[1, 1, 1]);
        assert_eq!(sets, vec![vec![0], vec![1], vec![0]]);
    }

    #[test]
    fn shrink_keeps_a_prefix_of_the_old_block() {
        let order: Vec<u32> = (0..8).collect();
        let before = assign_cpu_sets(&order, &[2, 4, 2]);
        // App 1 shrinks 4 → 2 with app 0 unchanged: it keeps cpus 2,3.
        let after = assign_cpu_sets(&order, &[2, 2, 2]);
        assert_eq!(after[1], before[1][..2].to_vec());
    }

    #[test]
    fn empty_order_yields_empty_sets() {
        let sets = assign_cpu_sets(&[], &[2, 2]);
        assert_eq!(sets, vec![Vec::<u32>::new(), Vec::new()]);
    }

    #[test]
    fn weighted_still_capped() {
        let apps = vec![
            AppDemand {
                processes: 3,
                weight: 100.0,
            },
            AppDemand {
                processes: 16,
                weight: 1.0,
            },
        ];
        let t = partition(16, 0, &apps);
        assert_eq!(t, vec![3, 13]);
    }
}
