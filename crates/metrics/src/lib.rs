//! `metrics` — instrumentation and figure-data plumbing.
//!
//! Turns `simkernel` traces into the data series behind the paper's
//! figures (speed-up curves, wall-clock bars, runnable-process traces) and
//! renders them as aligned text tables, quick ASCII charts, and CSV.

#![warn(missing_docs)]

mod render;
mod series;
mod trace;

pub use render::{ascii_chart, series_csv, table};
pub use series::Series;
pub use trace::{preemption_count, runnable_app_series, runnable_total_series};
