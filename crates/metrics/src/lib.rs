//! `metrics` — instrumentation and figure-data plumbing.
//!
//! Turns `simkernel` traces into the data series behind the paper's
//! figures (speed-up curves, wall-clock bars, runnable-process traces) and
//! renders them as aligned text tables, quick ASCII charts, CSV, JSON run
//! reports, and Perfetto-loadable Chrome trace-event files. Also provides
//! the aggregation primitives the instrumentation layers share: named
//! counters and log-bucketed mergeable histograms.

#![warn(missing_docs)]

pub mod counters;
pub mod histogram;
pub mod json;
pub mod perfetto;
mod render;
mod series;
mod trace;

pub use counters::Counters;
pub use histogram::Histogram;
pub use json::JsonValue;
pub use perfetto::TraceBuilder;
pub use render::{ascii_chart, series_csv, table};
pub use series::Series;
pub use trace::{preemption_count, runnable_app_series, runnable_total_series};
