//! Chrome trace-event export (loadable in Perfetto / `chrome://tracing`).
//!
//! [`TraceBuilder`] assembles trace events in the JSON "trace event format"
//! — complete slices (`ph: "X"`), instants (`"i"`), counters (`"C"`), and
//! metadata (`"M"`) — with timestamps in microseconds, and renders them via
//! [`crate::json`]. [`kernel_trace`] converts a `simkernel` trace into a
//! per-processor timeline: one track per CPU whose slices are the dispatched
//! processes, counter tracks for runnable-process counts, and instants for
//! the paper's pathologies (spin starts, preempt-while-spinning, lock
//! hand-offs).

use desim::{SimTime, Tracer};
use simkernel::KTrace;

use crate::json::JsonValue;

/// Builds a Chrome trace-event JSON document.
#[derive(Clone, Debug, Default)]
pub struct TraceBuilder {
    events: Vec<JsonValue>,
}

fn base(
    ph: &str,
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    ts_us: f64,
) -> Vec<(String, JsonValue)> {
    vec![
        ("name".into(), JsonValue::str(name)),
        ("cat".into(), JsonValue::str(cat)),
        ("ph".into(), JsonValue::str(ph)),
        ("pid".into(), JsonValue::uint(pid)),
        ("tid".into(), JsonValue::uint(tid)),
        ("ts".into(), JsonValue::Num(ts_us)),
    ]
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names a trace process (a top-level track group).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        let mut e = base("M", "process_name", "__metadata", pid, 0, 0.0);
        e.push((
            "args".into(),
            JsonValue::obj([("name", JsonValue::str(name))]),
        ));
        self.events.push(JsonValue::Obj(e));
    }

    /// Names a trace thread (one track).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let mut e = base("M", "thread_name", "__metadata", pid, tid, 0.0);
        e.push((
            "args".into(),
            JsonValue::obj([("name", JsonValue::str(name))]),
        ));
        self.events.push(JsonValue::Obj(e));
    }

    /// Adds a complete slice (`ph: "X"`): an interval `[ts, ts + dur)` on a
    /// track, with optional `args` (pass [`JsonValue::Null`] for none).
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        dur_us: f64,
        args: JsonValue,
    ) {
        let mut e = base("X", name, cat, pid, tid, ts_us);
        e.push(("dur".into(), JsonValue::Num(dur_us)));
        if !matches!(args, JsonValue::Null) {
            e.push(("args".into(), args));
        }
        self.events.push(JsonValue::Obj(e));
    }

    /// Adds a thread-scoped instant event (`ph: "i"`).
    pub fn instant(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        args: JsonValue,
    ) {
        let mut e = base("i", name, cat, pid, tid, ts_us);
        e.push(("s".into(), JsonValue::str("t")));
        if !matches!(args, JsonValue::Null) {
            e.push(("args".into(), args));
        }
        self.events.push(JsonValue::Obj(e));
    }

    /// Adds a counter sample (`ph: "C"`): the value of `series` at `ts`.
    pub fn counter(&mut self, name: &str, pid: u64, ts_us: f64, series: &str, value: f64) {
        let mut e = base("C", name, "counter", pid, 0, ts_us);
        e.push((
            "args".into(),
            JsonValue::obj([(series, JsonValue::Num(value))]),
        ));
        self.events.push(JsonValue::Obj(e));
    }

    /// Finishes the document: `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
    pub fn finish(self) -> JsonValue {
        JsonValue::obj([
            ("traceEvents", JsonValue::Arr(self.events)),
            ("displayTimeUnit", JsonValue::str("ms")),
        ])
    }
}

/// Trace-process id used for the simulated machine's tracks.
pub const MACHINE_PID: u64 = 1;

fn us(t: SimTime) -> f64 {
    t.since(SimTime::ZERO).nanos() as f64 / 1_000.0
}

/// Converts a kernel trace into a Perfetto timeline.
///
/// Track layout: trace-process [`MACHINE_PID`] ("machine") has one thread
/// per CPU; each dispatch opens a slice named after the process (and its
/// application, when the spawn was retained in the trace) which closes at
/// the next preemption, exit, or re-dispatch of that CPU — or at `end` if
/// still on-processor. Runnable counts become counter tracks, and spin
/// starts, preempt-while-spinning, and lock hand-offs become instants.
pub fn kernel_trace(trace: &Tracer<KTrace>, num_cpus: usize, end: SimTime) -> TraceBuilder {
    let mut b = TraceBuilder::new();
    b.process_name(MACHINE_PID, "machine");
    for cpu in 0..num_cpus {
        b.thread_name(MACHINE_PID, cpu as u64, &format!("cpu {cpu}"));
    }

    // pid -> app id, learned from retained Spawn events.
    let mut app_of = std::collections::BTreeMap::new();
    // Open slice per cpu: (sim pid, start time).
    let mut open: Vec<Option<(u32, SimTime)>> = vec![None; num_cpus];
    // Where each sim pid currently runs (for attributing instants).
    let mut cpu_of = std::collections::BTreeMap::new();

    let slice_name =
        |app_of: &std::collections::BTreeMap<u32, u32>, pid: u32| match app_of.get(&pid) {
            Some(app) => format!("P{pid} (app {app})"),
            None => format!("P{pid}"),
        };
    let close = |b: &mut TraceBuilder,
                 app_of: &std::collections::BTreeMap<u32, u32>,
                 cpu: usize,
                 slot: &mut Option<(u32, SimTime)>,
                 now: SimTime| {
        if let Some((pid, start)) = slot.take() {
            b.complete(
                &slice_name(app_of, pid),
                "dispatch",
                MACHINE_PID,
                cpu as u64,
                us(start),
                us(now) - us(start),
                JsonValue::Null,
            );
        }
    };

    for e in trace.events() {
        let t = e.time;
        match &e.kind {
            KTrace::Spawn { pid, app } => {
                app_of.insert(pid.0, app.0);
            }
            KTrace::Dispatch { cpu, pid, .. } => {
                let c = cpu.0;
                if c < num_cpus {
                    close(&mut b, &app_of, c, &mut open[c], t);
                    open[c] = Some((pid.0, t));
                }
                cpu_of.insert(pid.0, cpu.0);
            }
            KTrace::Preempt { cpu, pid } => {
                let c = cpu.0;
                if c < num_cpus {
                    close(&mut b, &app_of, c, &mut open[c], t);
                }
                cpu_of.remove(&pid.0);
            }
            KTrace::Exit { pid, app: _ } => {
                if let Some(c) = cpu_of.remove(&pid.0) {
                    if c < num_cpus {
                        close(&mut b, &app_of, c, &mut open[c], t);
                    }
                }
            }
            KTrace::Runnable {
                app,
                app_count,
                total,
            } => {
                b.counter(
                    &format!("runnable app {}", app.0),
                    MACHINE_PID,
                    us(t),
                    "runnable",
                    *app_count as f64,
                );
                b.counter(
                    "runnable total",
                    MACHINE_PID,
                    us(t),
                    "runnable",
                    *total as f64,
                );
            }
            KTrace::SpinStart { pid, lock, holder } => {
                let tid = cpu_of.get(&pid.0).copied().unwrap_or(0) as u64;
                b.instant(
                    "spin start",
                    "lock",
                    MACHINE_PID,
                    tid,
                    us(t),
                    JsonValue::obj([
                        ("pid", JsonValue::uint(pid.0 as u64)),
                        ("lock", JsonValue::uint(lock.0 as u64)),
                        ("holder", JsonValue::uint(holder.0 as u64)),
                    ]),
                );
            }
            KTrace::PreemptWhileSpinning {
                cpu,
                pid,
                lock,
                holder,
            } => {
                b.instant(
                    "preempt while spinning",
                    "lock",
                    MACHINE_PID,
                    cpu.0 as u64,
                    us(t),
                    JsonValue::obj([
                        ("pid", JsonValue::uint(pid.0 as u64)),
                        ("lock", JsonValue::uint(lock.0 as u64)),
                        (
                            "holder",
                            holder.map_or(JsonValue::Null, |h| JsonValue::uint(h.0 as u64)),
                        ),
                    ]),
                );
            }
            KTrace::LockHandoff {
                lock,
                from,
                to,
                waited,
            } => {
                let tid = cpu_of.get(&to.0).copied().unwrap_or(0) as u64;
                b.instant(
                    "lock handoff",
                    "lock",
                    MACHINE_PID,
                    tid,
                    us(t),
                    JsonValue::obj([
                        ("lock", JsonValue::uint(lock.0 as u64)),
                        (
                            "from",
                            from.map_or(JsonValue::Null, |p| JsonValue::uint(p.0 as u64)),
                        ),
                        ("to", JsonValue::uint(to.0 as u64)),
                        ("waited_us", JsonValue::Num(waited.nanos() as f64 / 1_000.0)),
                    ]),
                );
            }
            KTrace::AppDone { app } => {
                b.instant(
                    &format!("app {} done", app.0),
                    "app",
                    MACHINE_PID,
                    0,
                    us(t),
                    JsonValue::Null,
                );
            }
        }
    }
    for (c, slot) in open.iter_mut().enumerate() {
        close(&mut b, &app_of, c, slot, end);
    }
    b
}

/// Thread id of the per-application "server decisions" track in a
/// [`sched_timeline`] document — far above any plausible worker index.
pub const DECISION_TID: u64 = 9_999;

/// A decoded scheduling event from a `native-rt` flight recorder (or a
/// `uthreads` span mirror). This crate deliberately does not depend on
/// the runtimes, so callers (e.g. `bench`) convert their event types
/// into this one before merging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedEvent {
    /// Nanoseconds since the producing process's clock origin.
    pub ts_ns: u64,
    /// Worker index within the application (0 for server decisions).
    pub worker: u16,
    /// What happened.
    pub kind: SchedEventKind,
    /// Kind-specific argument (wait µs, steal tier, target, …).
    pub arg: u32,
}

/// The event vocabulary of the flight recorder, mirrored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedEventKind {
    /// A worker picked up a job (`arg` = queue wait µs).
    JobStart,
    /// A worker finished a running burst (`arg` = jobs in the burst).
    JobEnd,
    /// A successful steal (`arg` = topology tier).
    Steal,
    /// The worker committed to an idle park.
    Park,
    /// The worker woke from an idle park.
    Unpark,
    /// The worker suspended itself at a safe point (`arg` = target).
    Suspend,
    /// The worker resumed from suspension (`arg` = wake latency µs).
    Resume,
    /// The worker observed a CPU-set change (`arg` = generation).
    CpuSet,
    /// The worker observed a new decision epoch (`arg` = target).
    Epoch,
    /// The worker rebuilt its victim rings (`arg` = new home CPU).
    Retier,
    /// A control-server partition decision (`arg` = target).
    Decision,
    /// The watchdog flagged a worker as stalled (`arg` = observed
    /// staleness in ms).
    Stall,
    /// A stalled worker made progress again (`arg` = episode ms).
    Recovered,
    /// The worker was culled by a concurrency-restricting gate
    /// (`arg` = time spent culled in µs, recorded on wake).
    CrCull,
    /// The worker's gate exit promoted a culled thread
    /// (`arg` = the gate's active-set bound).
    CrPromote,
}

/// One application's slice of the fleet: its events (flight-recorder
/// drains plus any server-journal entries for its pid, which carry the
/// [`SchedEventKind::Decision`] kind) under one trace process.
#[derive(Clone, Debug)]
pub struct AppTimeline {
    /// Trace-process id (the real pid, or a synthetic one per pool).
    pub pid: u64,
    /// Track-group label shown in the UI.
    pub name: String,
    /// Events in any order; the merge sorts per application.
    pub events: Vec<SchedEvent>,
}

/// Merges per-application flight-recorder streams into one multi-process
/// Perfetto timeline: one trace process per application, one thread per
/// worker whose job/suspension slices are reconstructed from the event
/// stream (a slice closes at the next event on its worker, the same
/// next-event-boundary scheme as [`kernel_trace`]), instants for steals,
/// parks, and control observations, and the server's partition decisions
/// as instants on a dedicated [`DECISION_TID`] track per application.
///
/// Timestamps must share one clock origin per producing process (the
/// flight recorder guarantees this); each track's events come out in
/// nondecreasing timestamp order.
pub fn sched_timeline(apps: &[AppTimeline]) -> TraceBuilder {
    use std::collections::{BTreeMap, BTreeSet};

    enum Open {
        Job { start_ns: u64, wait_us: u32 },
        Suspended { start_ns: u64 },
    }

    let mut b = TraceBuilder::new();
    for app in apps {
        b.process_name(app.pid, &app.name);
        let mut events: Vec<&SchedEvent> = app.events.iter().collect();
        events.sort_by_key(|e| (e.ts_ns, e.worker));
        let mut named: BTreeSet<u64> = BTreeSet::new();
        let mut open: BTreeMap<u16, Open> = BTreeMap::new();
        let end_ns = events.last().map_or(0, |e| e.ts_ns);
        let close = |b: &mut TraceBuilder, w: u16, slot: Option<Open>, now_ns: u64| match slot {
            Some(Open::Job { start_ns, wait_us }) => b.complete(
                "job",
                "job",
                app.pid,
                w as u64,
                start_ns as f64 / 1_000.0,
                now_ns.saturating_sub(start_ns) as f64 / 1_000.0,
                JsonValue::obj([("wait_us", JsonValue::uint(wait_us as u64))]),
            ),
            Some(Open::Suspended { start_ns }) => b.complete(
                "suspended",
                "control",
                app.pid,
                w as u64,
                start_ns as f64 / 1_000.0,
                now_ns.saturating_sub(start_ns) as f64 / 1_000.0,
                JsonValue::Null,
            ),
            None => {}
        };
        for e in &events {
            let (tid, track_label) = if e.kind == SchedEventKind::Decision {
                (DECISION_TID, "server decisions".to_string())
            } else {
                (e.worker as u64, format!("worker {}", e.worker))
            };
            if named.insert(tid) {
                b.thread_name(app.pid, tid, &track_label);
            }
            let ts_us = e.ts_ns as f64 / 1_000.0;
            let arg = JsonValue::uint(e.arg as u64);
            match e.kind {
                SchedEventKind::JobStart => {
                    close(&mut b, e.worker, open.remove(&e.worker), e.ts_ns);
                    open.insert(
                        e.worker,
                        Open::Job {
                            start_ns: e.ts_ns,
                            wait_us: e.arg,
                        },
                    );
                }
                SchedEventKind::JobEnd => {
                    close(&mut b, e.worker, open.remove(&e.worker), e.ts_ns);
                    b.instant(
                        "burst end",
                        "job",
                        app.pid,
                        tid,
                        ts_us,
                        JsonValue::obj([("jobs", arg)]),
                    );
                }
                SchedEventKind::Steal => b.instant(
                    "steal",
                    "steal",
                    app.pid,
                    tid,
                    ts_us,
                    JsonValue::obj([("tier", arg)]),
                ),
                SchedEventKind::Park => {
                    close(&mut b, e.worker, open.remove(&e.worker), e.ts_ns);
                    b.instant("park", "idle", app.pid, tid, ts_us, JsonValue::Null);
                }
                SchedEventKind::Unpark => {
                    b.instant("unpark", "idle", app.pid, tid, ts_us, JsonValue::Null);
                }
                SchedEventKind::Suspend => {
                    close(&mut b, e.worker, open.remove(&e.worker), e.ts_ns);
                    open.insert(e.worker, Open::Suspended { start_ns: e.ts_ns });
                }
                SchedEventKind::Resume => {
                    close(&mut b, e.worker, open.remove(&e.worker), e.ts_ns);
                    b.instant(
                        "resume",
                        "control",
                        app.pid,
                        tid,
                        ts_us,
                        JsonValue::obj([("wake_us", arg)]),
                    );
                }
                SchedEventKind::CpuSet => b.instant(
                    "cpu-set change",
                    "control",
                    app.pid,
                    tid,
                    ts_us,
                    JsonValue::obj([("generation", arg)]),
                ),
                SchedEventKind::Epoch => b.instant(
                    "new target",
                    "control",
                    app.pid,
                    tid,
                    ts_us,
                    JsonValue::obj([("target", arg)]),
                ),
                SchedEventKind::Retier => b.instant(
                    "retier",
                    "control",
                    app.pid,
                    tid,
                    ts_us,
                    JsonValue::obj([("home_cpu", arg)]),
                ),
                SchedEventKind::Decision => b.instant(
                    "decision",
                    "control",
                    app.pid,
                    tid,
                    ts_us,
                    JsonValue::obj([("target", arg)]),
                ),
                SchedEventKind::Stall => b.instant(
                    "stall",
                    "watchdog",
                    app.pid,
                    tid,
                    ts_us,
                    JsonValue::obj([("stale_ms", arg)]),
                ),
                SchedEventKind::Recovered => b.instant(
                    "recovered",
                    "watchdog",
                    app.pid,
                    tid,
                    ts_us,
                    JsonValue::obj([("episode_ms", arg)]),
                ),
                SchedEventKind::CrCull => b.instant(
                    "cr-cull",
                    "crlock",
                    app.pid,
                    tid,
                    ts_us,
                    JsonValue::obj([("culled_us", arg)]),
                ),
                SchedEventKind::CrPromote => b.instant(
                    "cr-promote",
                    "crlock",
                    app.pid,
                    tid,
                    ts_us,
                    JsonValue::obj([("active_set", arg)]),
                ),
            }
        }
        for (w, slot) in open {
            close(&mut b, w, Some(slot), end_ns);
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn builder_emits_well_formed_events() {
        let mut b = TraceBuilder::new();
        b.process_name(1, "machine");
        b.thread_name(1, 0, "cpu 0");
        b.complete("P0", "dispatch", 1, 0, 0.0, 50.0, JsonValue::Null);
        b.instant("spin start", "lock", 1, 0, 10.0, JsonValue::Null);
        b.counter("runnable total", 1, 10.0, "runnable", 3.0);
        assert_eq!(b.len(), 5);
        let doc = b.finish().render();
        let back = json::parse(&doc).unwrap();
        let events = back.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(events.len(), 5);
        for e in events {
            assert!(e.get("ph").is_some());
            assert!(e.get("ts").and_then(|v| v.as_num()).is_some());
        }
        let slice = &events[2];
        assert_eq!(slice.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(slice.get("dur").and_then(|v| v.as_num()), Some(50.0));
    }

    fn ev(ts_ns: u64, worker: u16, kind: SchedEventKind, arg: u32) -> SchedEvent {
        SchedEvent {
            ts_ns,
            worker,
            kind,
            arg,
        }
    }

    fn two_app_fleet() -> Vec<AppTimeline> {
        vec![
            AppTimeline {
                pid: 101,
                name: "app-a".into(),
                // Deliberately out of order: the merge must sort.
                events: vec![
                    ev(5_000, 0, SchedEventKind::JobEnd, 2),
                    ev(1_000, 0, SchedEventKind::JobStart, 7),
                    ev(3_000, 0, SchedEventKind::JobStart, 0),
                    ev(2_000, 1, SchedEventKind::Steal, 1),
                    ev(2_500, 0, SchedEventKind::Decision, 4),
                    ev(6_000, 1, SchedEventKind::Suspend, 2),
                    ev(9_000, 1, SchedEventKind::Resume, 42),
                ],
            },
            AppTimeline {
                pid: 202,
                name: "app-b".into(),
                events: vec![
                    ev(500, 3, SchedEventKind::JobStart, 1),
                    ev(700, 3, SchedEventKind::Park, 0),
                    ev(900, 3, SchedEventKind::Unpark, 0),
                    ev(950, 0, SchedEventKind::Decision, 2),
                ],
            },
        ]
    }

    #[test]
    fn sched_timeline_builds_per_app_tracks_with_decision_instants() {
        let doc = sched_timeline(&two_app_fleet()).finish().render();
        let back = json::parse(&doc).unwrap();
        let events = back.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        // Both trace processes are named.
        let proc_names: Vec<(f64, &str)> = events
            .iter()
            .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("process_name"))
            .map(|e| {
                (
                    e.get("pid").and_then(|v| v.as_num()).unwrap(),
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(|v| v.as_str())
                        .unwrap(),
                )
            })
            .collect();
        assert!(proc_names.contains(&(101.0, "app-a")), "{proc_names:?}");
        assert!(proc_names.contains(&(202.0, "app-b")), "{proc_names:?}");
        // Job slices are reconstructed with next-event boundaries: app-a
        // worker 0 ran jobs [1,3) and [3,5) ms-in-µs.
        let slices: Vec<(f64, f64)> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|v| v.as_str()) == Some("X")
                    && e.get("pid").and_then(|v| v.as_num()) == Some(101.0)
                    && e.get("name").and_then(|v| v.as_str()) == Some("job")
            })
            .map(|e| {
                (
                    e.get("ts").and_then(|v| v.as_num()).unwrap(),
                    e.get("dur").and_then(|v| v.as_num()).unwrap(),
                )
            })
            .collect();
        assert_eq!(slices, vec![(1.0, 2.0), (3.0, 2.0)]);
        // The suspension interval became a slice too.
        assert!(events.iter().any(|e| {
            e.get("name").and_then(|v| v.as_str()) == Some("suspended")
                && e.get("ph").and_then(|v| v.as_str()) == Some("X")
                && e.get("dur").and_then(|v| v.as_num()) == Some(3.0)
        }));
        // Server decisions land as instants on the dedicated track of
        // the right application.
        let decisions: Vec<(f64, f64)> = events
            .iter()
            .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("decision"))
            .map(|e| {
                (
                    e.get("pid").and_then(|v| v.as_num()).unwrap(),
                    e.get("tid").and_then(|v| v.as_num()).unwrap(),
                )
            })
            .collect();
        assert_eq!(
            decisions,
            vec![(101.0, DECISION_TID as f64), (202.0, DECISION_TID as f64)]
        );
    }

    #[test]
    fn sched_timeline_is_monotonic_per_track() {
        let doc = sched_timeline(&two_app_fleet()).finish().render();
        let back = json::parse(&doc).unwrap();
        let events = back.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        // Every timestamp is finite and non-negative (a mixed-origin
        // merge would produce wild values), and within each track the
        // reconstructed slices are ordered and never overlap.
        let mut slices: std::collections::BTreeMap<(u64, u64), Vec<(f64, f64)>> =
            Default::default();
        for e in events {
            let ph = e.get("ph").and_then(|v| v.as_str()).unwrap();
            if ph == "M" {
                continue;
            }
            let pid = e.get("pid").and_then(|v| v.as_num()).unwrap() as u64;
            let tid = e.get("tid").and_then(|v| v.as_num()).unwrap() as u64;
            let ts = e.get("ts").and_then(|v| v.as_num()).unwrap();
            assert!(ts.is_finite() && ts >= 0.0, "bad ts {ts}");
            if ph == "X" {
                let dur = e.get("dur").and_then(|v| v.as_num()).unwrap();
                assert!(dur.is_finite() && dur >= 0.0, "bad dur {dur}");
                slices.entry((pid, tid)).or_default().push((ts, dur));
            }
        }
        assert!(!slices.is_empty());
        for ((pid, tid), mut track) in slices {
            track.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in track.windows(2) {
                let (ts0, dur0) = pair[0];
                let (ts1, _) = pair[1];
                assert!(
                    ts0 + dur0 <= ts1 + 1e-9,
                    "track ({pid},{tid}) slices overlap: [{ts0}+{dur0}] then {ts1}"
                );
            }
        }
    }
}
