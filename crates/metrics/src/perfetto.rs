//! Chrome trace-event export (loadable in Perfetto / `chrome://tracing`).
//!
//! [`TraceBuilder`] assembles trace events in the JSON "trace event format"
//! — complete slices (`ph: "X"`), instants (`"i"`), counters (`"C"`), and
//! metadata (`"M"`) — with timestamps in microseconds, and renders them via
//! [`crate::json`]. [`kernel_trace`] converts a `simkernel` trace into a
//! per-processor timeline: one track per CPU whose slices are the dispatched
//! processes, counter tracks for runnable-process counts, and instants for
//! the paper's pathologies (spin starts, preempt-while-spinning, lock
//! hand-offs).

use desim::{SimTime, Tracer};
use simkernel::KTrace;

use crate::json::JsonValue;

/// Builds a Chrome trace-event JSON document.
#[derive(Clone, Debug, Default)]
pub struct TraceBuilder {
    events: Vec<JsonValue>,
}

fn base(
    ph: &str,
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    ts_us: f64,
) -> Vec<(String, JsonValue)> {
    vec![
        ("name".into(), JsonValue::str(name)),
        ("cat".into(), JsonValue::str(cat)),
        ("ph".into(), JsonValue::str(ph)),
        ("pid".into(), JsonValue::uint(pid)),
        ("tid".into(), JsonValue::uint(tid)),
        ("ts".into(), JsonValue::Num(ts_us)),
    ]
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names a trace process (a top-level track group).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        let mut e = base("M", "process_name", "__metadata", pid, 0, 0.0);
        e.push((
            "args".into(),
            JsonValue::obj([("name", JsonValue::str(name))]),
        ));
        self.events.push(JsonValue::Obj(e));
    }

    /// Names a trace thread (one track).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let mut e = base("M", "thread_name", "__metadata", pid, tid, 0.0);
        e.push((
            "args".into(),
            JsonValue::obj([("name", JsonValue::str(name))]),
        ));
        self.events.push(JsonValue::Obj(e));
    }

    /// Adds a complete slice (`ph: "X"`): an interval `[ts, ts + dur)` on a
    /// track, with optional `args` (pass [`JsonValue::Null`] for none).
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        dur_us: f64,
        args: JsonValue,
    ) {
        let mut e = base("X", name, cat, pid, tid, ts_us);
        e.push(("dur".into(), JsonValue::Num(dur_us)));
        if !matches!(args, JsonValue::Null) {
            e.push(("args".into(), args));
        }
        self.events.push(JsonValue::Obj(e));
    }

    /// Adds a thread-scoped instant event (`ph: "i"`).
    pub fn instant(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        args: JsonValue,
    ) {
        let mut e = base("i", name, cat, pid, tid, ts_us);
        e.push(("s".into(), JsonValue::str("t")));
        if !matches!(args, JsonValue::Null) {
            e.push(("args".into(), args));
        }
        self.events.push(JsonValue::Obj(e));
    }

    /// Adds a counter sample (`ph: "C"`): the value of `series` at `ts`.
    pub fn counter(&mut self, name: &str, pid: u64, ts_us: f64, series: &str, value: f64) {
        let mut e = base("C", name, "counter", pid, 0, ts_us);
        e.push((
            "args".into(),
            JsonValue::obj([(series, JsonValue::Num(value))]),
        ));
        self.events.push(JsonValue::Obj(e));
    }

    /// Finishes the document: `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
    pub fn finish(self) -> JsonValue {
        JsonValue::obj([
            ("traceEvents", JsonValue::Arr(self.events)),
            ("displayTimeUnit", JsonValue::str("ms")),
        ])
    }
}

/// Trace-process id used for the simulated machine's tracks.
pub const MACHINE_PID: u64 = 1;

fn us(t: SimTime) -> f64 {
    t.since(SimTime::ZERO).nanos() as f64 / 1_000.0
}

/// Converts a kernel trace into a Perfetto timeline.
///
/// Track layout: trace-process [`MACHINE_PID`] ("machine") has one thread
/// per CPU; each dispatch opens a slice named after the process (and its
/// application, when the spawn was retained in the trace) which closes at
/// the next preemption, exit, or re-dispatch of that CPU — or at `end` if
/// still on-processor. Runnable counts become counter tracks, and spin
/// starts, preempt-while-spinning, and lock hand-offs become instants.
pub fn kernel_trace(trace: &Tracer<KTrace>, num_cpus: usize, end: SimTime) -> TraceBuilder {
    let mut b = TraceBuilder::new();
    b.process_name(MACHINE_PID, "machine");
    for cpu in 0..num_cpus {
        b.thread_name(MACHINE_PID, cpu as u64, &format!("cpu {cpu}"));
    }

    // pid -> app id, learned from retained Spawn events.
    let mut app_of = std::collections::BTreeMap::new();
    // Open slice per cpu: (sim pid, start time).
    let mut open: Vec<Option<(u32, SimTime)>> = vec![None; num_cpus];
    // Where each sim pid currently runs (for attributing instants).
    let mut cpu_of = std::collections::BTreeMap::new();

    let slice_name =
        |app_of: &std::collections::BTreeMap<u32, u32>, pid: u32| match app_of.get(&pid) {
            Some(app) => format!("P{pid} (app {app})"),
            None => format!("P{pid}"),
        };
    let close = |b: &mut TraceBuilder,
                 app_of: &std::collections::BTreeMap<u32, u32>,
                 cpu: usize,
                 slot: &mut Option<(u32, SimTime)>,
                 now: SimTime| {
        if let Some((pid, start)) = slot.take() {
            b.complete(
                &slice_name(app_of, pid),
                "dispatch",
                MACHINE_PID,
                cpu as u64,
                us(start),
                us(now) - us(start),
                JsonValue::Null,
            );
        }
    };

    for e in trace.events() {
        let t = e.time;
        match &e.kind {
            KTrace::Spawn { pid, app } => {
                app_of.insert(pid.0, app.0);
            }
            KTrace::Dispatch { cpu, pid, .. } => {
                let c = cpu.0;
                if c < num_cpus {
                    close(&mut b, &app_of, c, &mut open[c], t);
                    open[c] = Some((pid.0, t));
                }
                cpu_of.insert(pid.0, cpu.0);
            }
            KTrace::Preempt { cpu, pid } => {
                let c = cpu.0;
                if c < num_cpus {
                    close(&mut b, &app_of, c, &mut open[c], t);
                }
                cpu_of.remove(&pid.0);
            }
            KTrace::Exit { pid, app: _ } => {
                if let Some(c) = cpu_of.remove(&pid.0) {
                    if c < num_cpus {
                        close(&mut b, &app_of, c, &mut open[c], t);
                    }
                }
            }
            KTrace::Runnable {
                app,
                app_count,
                total,
            } => {
                b.counter(
                    &format!("runnable app {}", app.0),
                    MACHINE_PID,
                    us(t),
                    "runnable",
                    *app_count as f64,
                );
                b.counter(
                    "runnable total",
                    MACHINE_PID,
                    us(t),
                    "runnable",
                    *total as f64,
                );
            }
            KTrace::SpinStart { pid, lock, holder } => {
                let tid = cpu_of.get(&pid.0).copied().unwrap_or(0) as u64;
                b.instant(
                    "spin start",
                    "lock",
                    MACHINE_PID,
                    tid,
                    us(t),
                    JsonValue::obj([
                        ("pid", JsonValue::uint(pid.0 as u64)),
                        ("lock", JsonValue::uint(lock.0 as u64)),
                        ("holder", JsonValue::uint(holder.0 as u64)),
                    ]),
                );
            }
            KTrace::PreemptWhileSpinning {
                cpu,
                pid,
                lock,
                holder,
            } => {
                b.instant(
                    "preempt while spinning",
                    "lock",
                    MACHINE_PID,
                    cpu.0 as u64,
                    us(t),
                    JsonValue::obj([
                        ("pid", JsonValue::uint(pid.0 as u64)),
                        ("lock", JsonValue::uint(lock.0 as u64)),
                        (
                            "holder",
                            holder.map_or(JsonValue::Null, |h| JsonValue::uint(h.0 as u64)),
                        ),
                    ]),
                );
            }
            KTrace::LockHandoff {
                lock,
                from,
                to,
                waited,
            } => {
                let tid = cpu_of.get(&to.0).copied().unwrap_or(0) as u64;
                b.instant(
                    "lock handoff",
                    "lock",
                    MACHINE_PID,
                    tid,
                    us(t),
                    JsonValue::obj([
                        ("lock", JsonValue::uint(lock.0 as u64)),
                        (
                            "from",
                            from.map_or(JsonValue::Null, |p| JsonValue::uint(p.0 as u64)),
                        ),
                        ("to", JsonValue::uint(to.0 as u64)),
                        ("waited_us", JsonValue::Num(waited.nanos() as f64 / 1_000.0)),
                    ]),
                );
            }
            KTrace::AppDone { app } => {
                b.instant(
                    &format!("app {} done", app.0),
                    "app",
                    MACHINE_PID,
                    0,
                    us(t),
                    JsonValue::Null,
                );
            }
        }
    }
    for (c, slot) in open.iter_mut().enumerate() {
        close(&mut b, &app_of, c, slot, end);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn builder_emits_well_formed_events() {
        let mut b = TraceBuilder::new();
        b.process_name(1, "machine");
        b.thread_name(1, 0, "cpu 0");
        b.complete("P0", "dispatch", 1, 0, 0.0, 50.0, JsonValue::Null);
        b.instant("spin start", "lock", 1, 0, 10.0, JsonValue::Null);
        b.counter("runnable total", 1, 10.0, "runnable", 3.0);
        assert_eq!(b.len(), 5);
        let doc = b.finish().render();
        let back = json::parse(&doc).unwrap();
        let events = back.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(events.len(), 5);
        for e in events {
            assert!(e.get("ph").is_some());
            assert!(e.get("ts").and_then(|v| v.as_num()).is_some());
        }
        let slice = &events[2];
        assert_eq!(slice.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(slice.get("dur").and_then(|v| v.as_num()), Some(50.0));
    }
}
