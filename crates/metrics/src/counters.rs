//! Named monotonic counters with deterministic iteration order.
//!
//! A small, dependency-free registry used by the simulation-side
//! instrumentation (the native runtime has its own lock-free registry in
//! `native-rt`, since it must be updated concurrently). Counters iterate in
//! name order, so rendered reports are diff-stable.

use std::collections::BTreeMap;

use crate::json::JsonValue;

/// A set of named `u64` counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to a counter, creating it at zero first if needed.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(v) = self.map.get_mut(name) {
            *v += n;
        } else {
            self.map.insert(name.to_string(), n);
        }
    }

    /// Increments a counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Folds another set into this one (per-name addition).
    pub fn merge(&mut self, other: &Counters) {
        for (name, &v) in &other.map {
            self.add(name, v);
        }
    }

    /// Renders as a JSON object `{name: value, ...}` in name order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(
            self.map
                .iter()
                .map(|(k, &v)| (k.clone(), JsonValue::uint(v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_merge() {
        let mut a = Counters::new();
        a.incr("dispatches");
        a.add("dispatches", 2);
        a.add("preemptions", 5);
        assert_eq!(a.get("dispatches"), 3);
        assert_eq!(a.get("missing"), 0);

        let mut b = Counters::new();
        b.add("preemptions", 1);
        b.add("handoffs", 7);
        a.merge(&b);
        assert_eq!(a.get("preemptions"), 6);
        assert_eq!(a.get("handoffs"), 7);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.incr("zeta");
        c.incr("alpha");
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(c.to_json().render(), "{\"alpha\":1,\"zeta\":1}");
    }
}
