//! Extracting figure data from kernel traces.

use desim::Tracer;
use simkernel::{AppId, KTrace};

use crate::series::Series;

/// Builds the total-runnable-processes-over-time series (the system-wide
/// curve of Figure 5) from a kernel trace.
pub fn runnable_total_series(trace: &Tracer<KTrace>, label: impl Into<String>) -> Series {
    let mut s = Series::new(label);
    s.push(0.0, 0.0);
    let mut last_total = 0.0;
    for e in trace.events() {
        if let KTrace::Runnable { total, .. } = e.kind {
            let x = e.time.as_secs_f64();
            // Collapse same-timestamp updates to the final value.
            if s.points.last().is_some_and(|&(px, _)| px == x) {
                s.points.last_mut().expect("non-empty").1 = f64::from(total);
            } else {
                s.push(x, f64::from(total));
            }
            last_total = f64::from(total);
        }
    }
    let _ = last_total;
    s
}

/// Builds one application's runnable-processes-over-time series (the
/// per-application curves of Figure 5).
pub fn runnable_app_series(trace: &Tracer<KTrace>, app: AppId, label: impl Into<String>) -> Series {
    let mut s = Series::new(label);
    s.push(0.0, 0.0);
    for e in trace.events() {
        if let KTrace::Runnable {
            app: a, app_count, ..
        } = e.kind
        {
            if a == app {
                let x = e.time.as_secs_f64();
                if s.points.last().is_some_and(|&(px, _)| px == x) {
                    s.points.last_mut().expect("non-empty").1 = f64::from(app_count);
                } else {
                    s.push(x, f64::from(app_count));
                }
            }
        }
    }
    s
}

/// Counts preemptions recorded in the trace (a cheap proxy for scheduling
/// churn when comparing policies).
pub fn preemption_count(trace: &Tracer<KTrace>) -> u64 {
    trace
        .events()
        .filter(|e| matches!(e.kind, KTrace::Preempt { .. }))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{SimDur, SimTime};
    use simkernel::Pid;

    fn runnable(app: u32, app_count: u32, total: u32) -> KTrace {
        KTrace::Runnable {
            app: AppId(app),
            app_count,
            total,
        }
    }

    #[test]
    fn total_series_tracks_trace() {
        let mut tr = Tracer::new(true);
        tr.emit(SimTime::ZERO + SimDur::from_secs(1), runnable(0, 1, 1));
        tr.emit(SimTime::ZERO + SimDur::from_secs(2), runnable(1, 1, 2));
        tr.emit(SimTime::ZERO + SimDur::from_secs(3), runnable(0, 0, 1));
        let s = runnable_total_series(&tr, "total");
        assert_eq!(
            s.points,
            vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 1.0)]
        );
    }

    #[test]
    fn same_time_updates_collapse() {
        let mut tr = Tracer::new(true);
        let t = SimTime::ZERO + SimDur::from_secs(1);
        tr.emit(t, runnable(0, 1, 1));
        tr.emit(t, runnable(0, 2, 2));
        let s = runnable_total_series(&tr, "total");
        assert_eq!(s.points, vec![(0.0, 0.0), (1.0, 2.0)]);
    }

    #[test]
    fn app_series_filters() {
        let mut tr = Tracer::new(true);
        tr.emit(SimTime::ZERO + SimDur::from_secs(1), runnable(0, 1, 1));
        tr.emit(SimTime::ZERO + SimDur::from_secs(2), runnable(1, 5, 6));
        let s = runnable_app_series(&tr, AppId(1), "app1");
        assert_eq!(s.points, vec![(0.0, 0.0), (2.0, 5.0)]);
    }

    #[test]
    fn preemptions_counted() {
        let mut tr = Tracer::new(true);
        tr.emit(
            SimTime::ZERO,
            KTrace::Preempt {
                cpu: machine::CpuId(0),
                pid: Pid(1),
            },
        );
        assert_eq!(preemption_count(&tr), 1);
    }
}
