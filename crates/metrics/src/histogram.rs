//! Log-bucketed, mergeable histograms.
//!
//! Buckets are powers of two: bucket 0 holds the value 0, bucket `b ≥ 1`
//! holds values `v` with `2^(b-1) ≤ v < 2^b`. Any `u64` maps to one of the
//! 65 buckets, recording never saturates, and merging two histograms is
//! exact (count-lossless and order-independent — checked by a property
//! test), which makes the type safe to aggregate across worker threads or
//! simulation runs.

use crate::json::JsonValue;

const BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket index for a value: 0 for 0, else `ilog2(v) + 1`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The smallest value a bucket can hold.
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// The largest value a bucket can hold.
fn bucket_hi(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of all samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// An upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the top of the
    /// first bucket whose cumulative count reaches `q × count`, clamped to
    /// the observed maximum. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_hi(b).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Adds every sample of `other` into `self`. Merging is exact: counts,
    /// sums, and extrema combine losslessly, and the result is independent
    /// of merge order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lo, hi, count)` ranges in increasing order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_lo(b), bucket_hi(b), c))
    }

    /// Renders the histogram as a JSON object with summary statistics and
    /// the non-empty buckets.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("count", JsonValue::uint(self.count)),
            ("sum", JsonValue::Num(self.sum as f64)),
            ("mean", JsonValue::Num(self.mean())),
            ("min", self.min().map_or(JsonValue::Null, JsonValue::uint)),
            ("max", self.max().map_or(JsonValue::Null, JsonValue::uint)),
            (
                "p50",
                self.quantile(0.5).map_or(JsonValue::Null, JsonValue::uint),
            ),
            (
                "p99",
                self.quantile(0.99).map_or(JsonValue::Null, JsonValue::uint),
            ),
            (
                "buckets",
                JsonValue::Arr(
                    self.buckets()
                        .map(|(lo, hi, c)| {
                            JsonValue::Arr(vec![
                                JsonValue::uint(lo),
                                JsonValue::uint(hi),
                                JsonValue::uint(c),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lo(b)), b);
            assert_eq!(bucket_of(bucket_hi(b)), b);
        }
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean() - 202.2).abs() < 1e-9);
        // Median upper bound: rank 3 of 5 lands in the [4,7] bucket.
        assert_eq!(h.quantile(0.5), Some(7));
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1, 2, 3] {
            a.record(v);
        }
        for v in [100, 200] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut all = Histogram::new();
        for v in [1, 2, 3, 100, 200] {
            all.record(v);
        }
        assert_eq!(merged, all);
    }

    #[test]
    fn json_shape_parses() {
        let mut h = Histogram::new();
        h.record(7);
        h.record(900);
        let j = h.to_json().render();
        let back = crate::json::parse(&j).unwrap();
        assert_eq!(back.get("count").and_then(|v| v.as_num()), Some(2.0));
        assert_eq!(
            back.get("buckets").and_then(|v| v.as_arr()).unwrap().len(),
            2
        );
    }
}
