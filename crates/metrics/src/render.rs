//! Plain-text rendering: tables, ASCII charts, CSV.
//!
//! The figure harnesses print both a table (for EXPERIMENTS.md) and a
//! quick ASCII chart (for eyeballing curve shapes in a terminal).

use crate::series::Series;

/// Renders an aligned text table. `header` and every row must have the
/// same arity.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>w$}", w = *w));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push_str(&fmt_row(
        widths.iter().map(|_| "-").collect::<Vec<_>>(),
        &widths,
    ));
    // Re-render the separator as full-width dashes.
    let sep: String = widths
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let dashes = "-".repeat(*w);
            if i > 0 {
                format!("  {dashes}")
            } else {
                dashes
            }
        })
        .collect::<String>()
        + "\n";
    let first_nl = out.find('\n').expect("header line present") + 1;
    out.truncate(first_nl);
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Renders several series as an ASCII chart, one glyph per series.
/// X values are binned onto `width` columns; Y is scaled to `height` rows.
pub fn ascii_chart(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "chart too small");
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let (mut x_min, mut x_max, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY, 0.0f64);
    for s in series {
        for &(x, y) in &s.points {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_max = y_max.max(y);
        }
    }
    if !x_min.is_finite() || x_max <= x_min {
        return String::from("(no data)\n");
    }
    y_max = y_max.max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = ((y / y_max) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let y_here = y_max * (height - 1 - i) as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_here:8.1} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>8} +{}\n{:>10}{:<w$.1}{:>w2$.1}\n",
        "",
        "-".repeat(width),
        "",
        x_min,
        x_max,
        w = width / 2,
        w2 = width - width / 2,
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

/// Quotes a CSV field per RFC 4180 when it contains a comma, quote, or
/// newline; internal quotes are doubled. Plain fields pass through as-is.
fn csv_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serializes series to CSV: `x,label1,label2,...` — one row per distinct
/// x across all series (step-filled for series without that exact x).
/// Labels containing commas, quotes, or newlines are RFC 4180-quoted.
pub fn series_csv(series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup();
    let mut out = String::from("x");
    for s in series {
        out.push(',');
        out.push_str(&csv_field(&s.label));
    }
    out.push('\n');
    for &x in &xs {
        out.push_str(&format!("{x}"));
        for s in series {
            match s.step_at(x) {
                Some(y) => out.push_str(&format!(",{y}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["procs", "speedup"],
            &[
                vec!["1".into(), "1.00".into()],
                vec!["16".into(), "12.34".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("procs"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("12.34"));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn chart_renders_data() {
        let mut s = Series::new("line");
        for i in 0..10 {
            s.push(f64::from(i), f64::from(i));
        }
        let out = ascii_chart(&[s], 20, 6);
        assert!(out.contains('*'));
        assert!(out.contains("line"));
    }

    #[test]
    fn chart_empty_is_graceful() {
        assert_eq!(ascii_chart(&[Series::new("e")], 20, 6), "(no data)\n");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut a = Series::new("a");
        a.push(0.0, 1.0);
        a.push(1.0, 2.0);
        let mut b = Series::new("b");
        b.push(0.5, 5.0);
        let csv = series_csv(&[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines.len(), 4); // header + x ∈ {0, 0.5, 1}
        assert!(lines[1].starts_with("0,1,"));
        assert_eq!(lines[2], "0.5,1,5");
    }

    #[test]
    fn csv_quotes_awkward_labels() {
        let mut a = Series::new("matmul, controlled");
        a.push(0.0, 1.0);
        let mut b = Series::new("the \"fast\" one");
        b.push(0.0, 2.0);
        let mut c = Series::new("plain");
        c.push(0.0, 3.0);
        let csv = series_csv(&[a, b, c]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "x,\"matmul, controlled\",\"the \"\"fast\"\" one\",plain"
        );
        assert_eq!(lines[1], "0,1,2,3");
    }
}
