//! Minimal hand-rolled JSON: a value tree, a writer, and a strict parser.
//!
//! The repository deliberately carries no serialization dependency; run
//! reports and Perfetto traces are small and regular, so a ~200-line JSON
//! layer keeps the build hermetic. Object key order is preserved exactly as
//! inserted, which keeps emitted reports diff-stable across runs.

use std::fmt::Write as _;

use crate::series::Series;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Non-finite values render as `null` (JSON has no
    /// NaN/Infinity).
    Num(f64),
    /// A string (unescaped; escaping happens at render time).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> JsonValue {
        JsonValue::Num(n.into())
    }

    /// Builds a number value from a `u64` (lossless up to 2^53, which covers
    /// every duration and count this repository emits).
    pub fn uint(n: u64) -> JsonValue {
        JsonValue::Num(n as f64)
    }

    /// Looks up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, or `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, or `None` for non-numbers.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation (for human-inspected reports).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Converts plotted series into a JSON array of `{label, points}` objects,
/// with each point as a `[x, y]` pair — the payload behind every figure
/// binary's `--json` flag.
pub fn series_to_json(series: &[Series]) -> JsonValue {
    JsonValue::Arr(
        series
            .iter()
            .map(|s| {
                JsonValue::obj([
                    ("label", JsonValue::str(&s.label)),
                    (
                        "points",
                        JsonValue::Arr(
                            s.points
                                .iter()
                                .map(|&(x, y)| {
                                    JsonValue::Arr(vec![JsonValue::Num(x), JsonValue::Num(y)])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Converts a name→count map (e.g. a stats-registry snapshot's counters)
/// into a JSON object, preserving the map's iteration order. Used by
/// `pool_bench` to embed per-configuration scheduler counters in its
/// report.
pub fn counts_to_json<'a>(counts: impl IntoIterator<Item = (&'a str, u64)>) -> JsonValue {
    JsonValue::Obj(
        counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), JsonValue::uint(v)))
            .collect(),
    )
}

/// Parses a JSON document. Strict: rejects trailing garbage, unknown
/// escapes, and malformed numbers. Used by tests to validate emitted
/// traces and reports without an external dependency.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// A parse failure with byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired up; emitted traces
                            // never produce them, so reject outright.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one whole UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_reparse_round_trips() {
        let v = JsonValue::obj([
            ("name", JsonValue::str("fig4")),
            ("ok", JsonValue::Bool(true)),
            ("n", JsonValue::uint(42)),
            (
                "xs",
                JsonValue::Arr(vec![JsonValue::Num(0.5), JsonValue::Null]),
            ),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        // Pretty output parses to the same tree.
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn strings_are_escaped() {
        let v = JsonValue::str("a\"b\\c\nd\tcontrol:\u{1}");
        let text = v.render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\tcontrol:\\u0001\"");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(JsonValue::uint(1_000_000).render(), "1000000");
        assert_eq!(JsonValue::Num(1.5).render(), "1.5");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nulL").is_err());
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = parse("{\"z\": 1, \"a\": 2}").unwrap();
        match &v {
            JsonValue::Obj(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            _ => panic!("not an object"),
        }
        assert_eq!(v.get("a").and_then(JsonValue::as_num), Some(2.0));
    }

    #[test]
    fn counts_to_json_preserves_order_and_values() {
        let counts = [("steals", 3u64), ("jobs_run", 100), ("local_hits", 97)];
        let j = counts_to_json(counts.iter().map(|&(k, v)| (k, v)));
        assert_eq!(
            j.render(),
            "{\"steals\":3,\"jobs_run\":100,\"local_hits\":97}"
        );
        assert_eq!(j.get("jobs_run").and_then(JsonValue::as_num), Some(100.0));
    }

    #[test]
    fn series_json_shape() {
        let mut s = Series::new("spin, controlled");
        s.push(0.0, 1.0);
        s.push(1.0, 2.5);
        let j = series_to_json(&[s]);
        let text = j.render();
        let back = parse(&text).unwrap();
        let first = &back.as_arr().unwrap()[0];
        assert_eq!(
            first.get("label").and_then(JsonValue::as_str),
            Some("spin, controlled")
        );
        assert_eq!(
            first
                .get("points")
                .and_then(JsonValue::as_arr)
                .unwrap()
                .len(),
            2
        );
    }
}
