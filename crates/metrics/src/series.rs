//! Time series and data series for figure reproduction.

/// A labeled 2-D data series (one curve of a figure).
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Curve label, e.g. `"matmul (controlled)"`.
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        debug_assert!(
            self.points.last().map_or(true, |&(px, _)| px <= x),
            "points must be pushed in x order"
        );
        self.points.push((x, y));
    }

    /// Largest y value, or 0 when empty.
    pub fn y_max(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(0.0, f64::max)
    }

    /// Value at `x` treating the series as a step function (the value of
    /// the last point at or before `x`); `None` before the first point.
    pub fn step_at(&self, x: f64) -> Option<f64> {
        let idx = self.points.partition_point(|&(px, _)| px <= x);
        idx.checked_sub(1).map(|i| self.points[i].1)
    }

    /// Resamples a step-function series onto a regular grid from
    /// `x0` to `x1` with the given step — convenient for plotting
    /// runnable-count traces (Figure 5).
    pub fn resample_step(&self, x0: f64, x1: f64, dx: f64) -> Series {
        assert!(dx > 0.0);
        let mut out = Series::new(self.label.clone());
        let mut x = x0;
        while x <= x1 + 1e-9 {
            out.push(x, self.step_at(x).unwrap_or(0.0));
            x += dx;
        }
        out
    }

    /// Time-weighted mean of a step series over `[x0, x1]`.
    pub fn step_mean(&self, x0: f64, x1: f64) -> f64 {
        assert!(x1 > x0);
        let mut acc = 0.0;
        let mut x = x0;
        let mut v = self.step_at(x0).unwrap_or(0.0);
        for &(px, py) in self.points.iter().filter(|&&(px, _)| px > x0 && px < x1) {
            acc += v * (px - x);
            x = px;
            v = py;
        }
        acc += v * (x1 - x);
        acc / (x1 - x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Series {
        let mut s = Series::new("test");
        s.push(0.0, 1.0);
        s.push(10.0, 3.0);
        s.push(20.0, 2.0);
        s
    }

    #[test]
    fn step_lookup() {
        let s = s();
        assert_eq!(s.step_at(-1.0), None);
        assert_eq!(s.step_at(0.0), Some(1.0));
        assert_eq!(s.step_at(9.9), Some(1.0));
        assert_eq!(s.step_at(10.0), Some(3.0));
        assert_eq!(s.step_at(100.0), Some(2.0));
    }

    #[test]
    fn resample_grid() {
        let r = s().resample_step(0.0, 20.0, 5.0);
        let ys: Vec<f64> = r.points.iter().map(|&(_, y)| y).collect();
        assert_eq!(ys, vec![1.0, 1.0, 3.0, 3.0, 2.0]);
    }

    #[test]
    fn step_mean_weighted() {
        // 1 for [0,10), 3 for [10,20), mean over [0,20) = 2.
        let m = s().step_mean(0.0, 20.0);
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn y_max_works() {
        assert_eq!(s().y_max(), 3.0);
        assert_eq!(Series::new("empty").y_max(), 0.0);
    }
}
