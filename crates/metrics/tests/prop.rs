//! Property tests for series handling and rendering.

use metrics::{ascii_chart, series_csv, table, Series};
use proptest::prelude::*;

fn sorted_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..1_000.0, 0.0f64..100.0), 1..50).prop_map(|mut v| {
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        v
    })
}

proptest! {
    /// `step_at` returns exactly the value of the last point at-or-before x.
    #[test]
    fn step_at_matches_linear_scan(points in sorted_points(), x in 0.0f64..1_000.0) {
        let mut s = Series::new("s");
        for &(px, py) in &points {
            s.push(px, py);
        }
        let expect = points.iter().rev().find(|&&(px, _)| px <= x).map(|&(_, py)| py);
        prop_assert_eq!(s.step_at(x), expect);
    }

    /// A resampled step series only contains values the original had (or 0
    /// before the first point), and has the expected grid length.
    #[test]
    fn resample_preserves_values(points in sorted_points()) {
        let mut s = Series::new("s");
        for &(px, py) in &points {
            s.push(px, py);
        }
        let r = s.resample_step(0.0, 1_000.0, 50.0);
        prop_assert_eq!(r.points.len(), 21);
        let allowed: Vec<f64> = points.iter().map(|&(_, y)| y).chain([0.0]).collect();
        for &(_, y) in &r.points {
            prop_assert!(allowed.iter().any(|&a| (a - y).abs() < 1e-12));
        }
    }

    /// The step mean lies within the [min, max] of observed values.
    #[test]
    fn step_mean_bounded(points in sorted_points()) {
        let mut s = Series::new("s");
        for &(px, py) in &points {
            s.push(px, py);
        }
        let m = s.step_mean(0.0, 1_001.0);
        let hi = points.iter().map(|&(_, y)| y).fold(0.0f64, f64::max);
        prop_assert!(m >= -1e-9 && m <= hi + 1e-9, "mean {} above max {}", m, hi);
    }

    /// CSV output always has one header plus one row per distinct x, and
    /// every row has the same number of commas.
    #[test]
    fn csv_is_rectangular(pointsets in prop::collection::vec(sorted_points(), 1..4)) {
        let series: Vec<Series> = pointsets
            .iter()
            .enumerate()
            .map(|(i, pts)| {
                let mut s = Series::new(format!("s{i}"));
                for &(px, py) in pts {
                    s.push(px, py);
                }
                s
            })
            .collect();
        let csv = series_csv(&series);
        let lines: Vec<&str> = csv.lines().collect();
        let mut xs: Vec<f64> = pointsets.iter().flatten().map(|&(x, _)| x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs.dedup();
        prop_assert_eq!(lines.len(), xs.len() + 1);
        let commas = lines[0].matches(',').count();
        for l in &lines {
            prop_assert_eq!(l.matches(',').count(), commas, "ragged CSV: {}", l);
        }
    }

    /// The chart renderer never panics and always mentions every label.
    #[test]
    fn chart_total(pointsets in prop::collection::vec(sorted_points(), 1..4)) {
        let series: Vec<Series> = pointsets
            .iter()
            .enumerate()
            .map(|(i, pts)| {
                let mut s = Series::new(format!("curve-{i}"));
                for &(px, py) in pts {
                    s.push(px, py);
                }
                s
            })
            .collect();
        let out = ascii_chart(&series, 40, 10);
        if out != "(no data)\n" {
            for s in &series {
                prop_assert!(out.contains(&s.label), "label {} missing", s.label);
            }
        }
    }

    /// Tables are rectangular for arbitrary cell contents.
    #[test]
    fn table_is_rectangular(rows in prop::collection::vec(
        prop::collection::vec("[a-z0-9]{0,12}", 3..4), 1..10)) {
        let rows: Vec<Vec<String>> = rows;
        let out = table(&["a", "b", "c"], &rows);
        let lines: Vec<&str> = out.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 2);
        let w = lines[0].len();
        for l in &lines {
            prop_assert_eq!(l.len(), w);
        }
    }
}
