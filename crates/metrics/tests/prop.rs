//! Property tests for series handling, rendering, and histograms.

use metrics::{ascii_chart, series_csv, table, Histogram, Series};
use proptest::prelude::*;

fn sorted_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..1_000.0, 0.0f64..100.0), 1..50).prop_map(|mut v| {
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        v
    })
}

proptest! {
    /// `step_at` returns exactly the value of the last point at-or-before x.
    #[test]
    fn step_at_matches_linear_scan(points in sorted_points(), x in 0.0f64..1_000.0) {
        let mut s = Series::new("s");
        for &(px, py) in &points {
            s.push(px, py);
        }
        let expect = points.iter().rev().find(|&&(px, _)| px <= x).map(|&(_, py)| py);
        prop_assert_eq!(s.step_at(x), expect);
    }

    /// A resampled step series only contains values the original had (or 0
    /// before the first point), and has the expected grid length.
    #[test]
    fn resample_preserves_values(points in sorted_points()) {
        let mut s = Series::new("s");
        for &(px, py) in &points {
            s.push(px, py);
        }
        let r = s.resample_step(0.0, 1_000.0, 50.0);
        prop_assert_eq!(r.points.len(), 21);
        let allowed: Vec<f64> = points.iter().map(|&(_, y)| y).chain([0.0]).collect();
        for &(_, y) in &r.points {
            prop_assert!(allowed.iter().any(|&a| (a - y).abs() < 1e-12));
        }
    }

    /// The step mean lies within the [min, max] of observed values.
    #[test]
    fn step_mean_bounded(points in sorted_points()) {
        let mut s = Series::new("s");
        for &(px, py) in &points {
            s.push(px, py);
        }
        let m = s.step_mean(0.0, 1_001.0);
        let hi = points.iter().map(|&(_, y)| y).fold(0.0f64, f64::max);
        prop_assert!(m >= -1e-9 && m <= hi + 1e-9, "mean {} above max {}", m, hi);
    }

    /// CSV output always has one header plus one row per distinct x, and
    /// every row has the same number of commas.
    #[test]
    fn csv_is_rectangular(pointsets in prop::collection::vec(sorted_points(), 1..4)) {
        let series: Vec<Series> = pointsets
            .iter()
            .enumerate()
            .map(|(i, pts)| {
                let mut s = Series::new(format!("s{i}"));
                for &(px, py) in pts {
                    s.push(px, py);
                }
                s
            })
            .collect();
        let csv = series_csv(&series);
        let lines: Vec<&str> = csv.lines().collect();
        let mut xs: Vec<f64> = pointsets.iter().flatten().map(|&(x, _)| x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs.dedup();
        prop_assert_eq!(lines.len(), xs.len() + 1);
        let commas = lines[0].matches(',').count();
        for l in &lines {
            prop_assert_eq!(l.matches(',').count(), commas, "ragged CSV: {}", l);
        }
    }

    /// The chart renderer never panics and always mentions every label.
    #[test]
    fn chart_total(pointsets in prop::collection::vec(sorted_points(), 1..4)) {
        let series: Vec<Series> = pointsets
            .iter()
            .enumerate()
            .map(|(i, pts)| {
                let mut s = Series::new(format!("curve-{i}"));
                for &(px, py) in pts {
                    s.push(px, py);
                }
                s
            })
            .collect();
        let out = ascii_chart(&series, 40, 10);
        if out != "(no data)\n" {
            for s in &series {
                prop_assert!(out.contains(&s.label), "label {} missing", s.label);
            }
        }
    }

    /// Merging histograms loses no samples: counts, sums, and extrema all
    /// match a histogram fed the concatenated inputs.
    #[test]
    fn histogram_merge_is_count_lossless(
        a in prop::collection::vec(0u64..1u64 << 40, 0..200),
        b in prop::collection::vec(0u64..1u64 << 40, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.sum(), hall.sum());
        prop_assert_eq!(ha.min(), hall.min());
        prop_assert_eq!(ha.max(), hall.max());
        let buckets: Vec<_> = ha.buckets().collect();
        let expect: Vec<_> = hall.buckets().collect();
        prop_assert_eq!(buckets, expect);
    }

    /// Merge order does not matter: a⊕b equals b⊕a bucket for bucket, and
    /// quantiles agree.
    #[test]
    fn histogram_merge_is_order_independent(
        a in prop::collection::vec(0u64..1u64 << 40, 0..200),
        b in prop::collection::vec(0u64..1u64 << 40, 0..200),
    ) {
        let mut ha = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.record(v);
        }
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.sum(), ba.sum());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        let lhs: Vec<_> = ab.buckets().collect();
        let rhs: Vec<_> = ba.buckets().collect();
        prop_assert_eq!(lhs, rhs);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ab.quantile(q), ba.quantile(q));
        }
    }

    /// Tables are rectangular for arbitrary cell contents.
    #[test]
    fn table_is_rectangular(rows in prop::collection::vec(
        prop::collection::vec("[a-z0-9]{0,12}", 3..4), 1..10)) {
        let rows: Vec<Vec<String>> = rows;
        let out = table(&["a", "b", "c"], &rows);
        let lines: Vec<&str> = out.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 2);
        let w = lines[0].len();
        for l in &lines {
            prop_assert_eq!(l.len(), w);
        }
    }
}
