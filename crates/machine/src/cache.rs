//! Per-processor cache warmth model.
//!
//! The paper's fourth degradation mechanism is *processor cache corruption*:
//! every time a different process runs on a processor it evicts the previous
//! process's working set, which must be refetched at 50–100 cycles per line
//! on "scalable" machines. We model this at working-set granularity rather
//! than simulating individual lines:
//!
//! - each process has a *working set* of `ws_lines` cache lines;
//! - each processor remembers, per process, how many of that process's lines
//!   are still resident (its *footprint*);
//! - footprints decay exponentially with the amount of **other** processes'
//!   execution on that processor since the footprint was last touched
//!   (time constant [`CacheConfig::evict_tau`]);
//! - when a process is dispatched, the missing `ws_lines − resident` lines
//!   are refetched at [`CacheConfig::line_refill_cost`] each (scaled by bus
//!   contention), and that refill time does no useful work.
//!
//! This reproduces the qualitative behaviour the paper relies on: staying on
//! the same processor with no intervening processes is free; being
//! multiplexed with other applications makes every redispatch pay a reload
//! whose cost scales with miss latency.

use std::collections::HashMap;

use desim::SimDur;

use crate::config::CpuId;

/// Cache model parameters.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Time to refetch one working-set line after it has been evicted
    /// (uncontended).
    pub line_refill_cost: SimDur,
    /// Processor cache capacity, in lines; a single footprint never exceeds
    /// this.
    pub capacity_lines: u64,
    /// Exponential decay constant of a footprint under other processes'
    /// execution: after `evict_tau` of foreign execution, ~63% of the
    /// footprint has been evicted.
    pub evict_tau: SimDur,
}

#[derive(Clone, Debug)]
struct Footprint {
    /// Lines of this process still resident (estimate).
    resident: f64,
    /// This process's working-set size, in lines.
    ws_lines: u64,
    /// Value of the owning CPU's `exec_clock` when `resident` was last
    /// brought up to date.
    clock_at_update: u64,
}

#[derive(Clone, Debug)]
struct Pending {
    tag: u64,
    lines_left: f64,
    ns_per_line: f64,
}

#[derive(Clone, Debug, Default)]
struct CpuCache {
    /// Total nanoseconds of execution this CPU has performed.
    exec_clock: u64,
    footprints: HashMap<u64, Footprint>,
    pending: Option<Pending>,
}

/// Cache state for every processor of the machine.
///
/// Processes are identified by an opaque `tag` (the kernel uses raw pids).
#[derive(Clone, Debug)]
pub struct CacheSim {
    cfg: CacheConfig,
    cpus: Vec<CpuCache>,
}

impl CacheSim {
    /// Creates cold caches for `num_cpus` processors.
    pub fn new(cfg: CacheConfig, num_cpus: usize) -> Self {
        CacheSim {
            cfg,
            cpus: vec![CpuCache::default(); num_cpus],
        }
    }

    /// Brings `tag`'s footprint on `cpu` up to date and returns resident lines.
    fn refresh(cfg: &CacheConfig, cpu: &mut CpuCache, tag: u64, ws_lines: u64) -> f64 {
        let clock = cpu.exec_clock;
        let fp = cpu.footprints.entry(tag).or_insert(Footprint {
            resident: 0.0,
            ws_lines,
            clock_at_update: clock,
        });
        fp.ws_lines = ws_lines;
        let foreign_ns = clock - fp.clock_at_update;
        if foreign_ns > 0 {
            let tau = cfg.evict_tau.nanos().max(1) as f64;
            fp.resident *= (-(foreign_ns as f64) / tau).exp();
            fp.clock_at_update = clock;
        }
        fp.resident
    }

    /// Called when the kernel dispatches process `tag` on `cpu`.
    ///
    /// Returns the cache-reload penalty: simulated time the process will
    /// spend refetching its working set before doing useful work.
    /// `bus_multiplier` scales the per-line cost for bus contention.
    pub fn dispatch(&mut self, cpu: CpuId, tag: u64, ws_lines: u64, bus_multiplier: f64) -> SimDur {
        debug_assert!(bus_multiplier >= 1.0);
        let cfg = self.cfg;
        let c = &mut self.cpus[cpu.0];
        let ws = ws_lines.min(cfg.capacity_lines);
        let resident = Self::refresh(&cfg, c, tag, ws);
        let cold = (ws as f64 - resident).max(0.0);
        let ns_per_line = cfg.line_refill_cost.nanos() as f64 * bus_multiplier;
        c.pending = Some(Pending {
            tag,
            lines_left: cold,
            ns_per_line,
        });
        SimDur((cold * ns_per_line).round() as u64)
    }

    /// Accounts `dur` of execution by `tag` on `cpu`.
    ///
    /// Returns the portion of `dur` that was *useful work* — i.e. `dur`
    /// minus any remaining cache-refill time from the last dispatch.
    pub fn run(&mut self, cpu: CpuId, tag: u64, dur: SimDur) -> SimDur {
        let c = &mut self.cpus[cpu.0];
        let mut refill_ns = 0u64;
        match &mut c.pending {
            Some(p) if p.tag == tag => {
                let need = (p.lines_left * p.ns_per_line).round() as u64;
                refill_ns = need.min(dur.nanos());
                let gained = if p.ns_per_line > 0.0 {
                    refill_ns as f64 / p.ns_per_line
                } else {
                    p.lines_left
                };
                p.lines_left = (p.lines_left - gained).max(0.0);
                let done = p.lines_left <= f64::EPSILON;
                let fp = c
                    .footprints
                    .get_mut(&tag)
                    .expect("dispatched process has footprint");
                fp.resident = (fp.resident + gained).min(fp.ws_lines as f64);
                if done {
                    c.pending = None;
                }
            }
            _ => {
                // Dispatch bookkeeping was for someone else (or absent):
                // treat the whole duration as warm execution.
                c.pending = None;
            }
        }
        // Execution advances the CPU's clock; refreshing our own marker
        // afterwards means our own execution never decays our footprint.
        c.exec_clock += dur.nanos();
        if let Some(fp) = c.footprints.get_mut(&tag) {
            fp.clock_at_update = c.exec_clock;
        }
        SimDur(dur.nanos() - refill_ns)
    }

    /// Remaining refill time from the last [`CacheSim::dispatch`] of `tag`
    /// on `cpu` — zero if the refill completed or the dispatch bookkeeping
    /// belongs to another process. Used by the kernel to schedule operation
    /// completions for processes that were granted a lock mid-occupancy.
    pub fn pending_refill(&self, cpu: CpuId, tag: u64) -> SimDur {
        match &self.cpus[cpu.0].pending {
            Some(p) if p.tag == tag => SimDur((p.lines_left * p.ns_per_line).round() as u64),
            _ => SimDur::ZERO,
        }
    }

    /// Fraction of `tag`'s working set resident on `cpu`, in `[0, 1]`.
    /// Returns 0 for processes never seen on that processor.
    pub fn warmth(&self, cpu: CpuId, tag: u64) -> f64 {
        let c = &self.cpus[cpu.0];
        match c.footprints.get(&tag) {
            Some(fp) if fp.ws_lines > 0 => {
                let foreign_ns = c.exec_clock - fp.clock_at_update;
                let tau = self.cfg.evict_tau.nanos().max(1) as f64;
                let resident = fp.resident * (-(foreign_ns as f64) / tau).exp();
                (resident / fp.ws_lines as f64).clamp(0.0, 1.0)
            }
            _ => 0.0,
        }
    }

    /// Drops all cache state for an exited process.
    pub fn forget(&mut self, tag: u64) {
        for c in &mut self.cpus {
            c.footprints.remove(&tag);
            if c.pending.as_ref().is_some_and(|p| p.tag == tag) {
                c.pending = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig {
            line_refill_cost: SimDur::from_nanos(1_000),
            capacity_lines: 1_000,
            evict_tau: SimDur::from_millis(10),
        }
    }

    const CPU: CpuId = CpuId(0);

    #[test]
    fn first_dispatch_is_fully_cold() {
        let mut cs = CacheSim::new(cfg(), 1);
        let pen = cs.dispatch(CPU, 1, 100, 1.0);
        assert_eq!(pen, SimDur::from_micros(100)); // 100 lines * 1 us
    }

    #[test]
    fn redispatch_with_no_interference_is_free() {
        let mut cs = CacheSim::new(cfg(), 1);
        let pen = cs.dispatch(CPU, 1, 100, 1.0);
        cs.run(CPU, 1, pen + SimDur::from_millis(1));
        let pen2 = cs.dispatch(CPU, 1, 100, 1.0);
        assert_eq!(pen2, SimDur::ZERO);
        assert!((cs.warmth(CPU, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn foreign_execution_evicts() {
        let mut cs = CacheSim::new(cfg(), 1);
        let pen = cs.dispatch(CPU, 1, 100, 1.0);
        cs.run(CPU, 1, pen);
        // Someone else runs for 3 tau: warmth should drop to ~5%.
        let p2 = cs.dispatch(CPU, 2, 100, 1.0);
        cs.run(CPU, 2, p2 + SimDur::from_millis(30));
        let w = cs.warmth(CPU, 1);
        assert!(w < 0.06, "warmth {w}");
        let pen2 = cs.dispatch(CPU, 1, 100, 1.0);
        assert!(pen2 > SimDur::from_micros(90), "penalty {pen2}");
    }

    #[test]
    fn refill_time_is_not_useful_work() {
        let mut cs = CacheSim::new(cfg(), 1);
        let pen = cs.dispatch(CPU, 1, 100, 1.0);
        assert_eq!(pen, SimDur::from_micros(100));
        // Run for half the refill: zero useful work.
        let useful = cs.run(CPU, 1, SimDur::from_micros(50));
        assert_eq!(useful, SimDur::ZERO);
        // Next 100 us: 50 finish the refill, 50 are useful.
        let useful = cs.run(CPU, 1, SimDur::from_micros(100));
        assert_eq!(useful, SimDur::from_micros(50));
    }

    #[test]
    fn partial_refill_is_remembered() {
        let mut cs = CacheSim::new(cfg(), 1);
        cs.dispatch(CPU, 1, 100, 1.0);
        cs.run(CPU, 1, SimDur::from_micros(40)); // 40 lines refilled
                                                 // Preempted immediately; redispatched with no foreign execution.
        let pen = cs.dispatch(CPU, 1, 100, 1.0);
        assert_eq!(pen, SimDur::from_micros(60));
    }

    #[test]
    fn bus_contention_scales_penalty() {
        let mut cs = CacheSim::new(cfg(), 1);
        let pen = cs.dispatch(CPU, 1, 100, 2.0);
        assert_eq!(pen, SimDur::from_micros(200));
    }

    #[test]
    fn working_set_capped_by_capacity() {
        let mut cs = CacheSim::new(cfg(), 1);
        let pen = cs.dispatch(CPU, 1, 5_000, 1.0);
        assert_eq!(pen, SimDur::from_millis(1)); // capped at 1000 lines
    }

    #[test]
    fn per_cpu_footprints_are_independent() {
        let mut cs = CacheSim::new(cfg(), 2);
        let pen = cs.dispatch(CpuId(0), 1, 100, 1.0);
        cs.run(CpuId(0), 1, pen + SimDur::from_millis(1));
        // Warm on cpu0, cold on cpu1.
        assert!(cs.warmth(CpuId(0), 1) > 0.99);
        assert_eq!(cs.warmth(CpuId(1), 1), 0.0);
        let pen1 = cs.dispatch(CpuId(1), 1, 100, 1.0);
        assert_eq!(pen1, SimDur::from_micros(100));
    }

    #[test]
    fn forget_drops_state() {
        let mut cs = CacheSim::new(cfg(), 1);
        let pen = cs.dispatch(CPU, 1, 100, 1.0);
        cs.run(CPU, 1, pen);
        cs.forget(1);
        assert_eq!(cs.warmth(CPU, 1), 0.0);
    }

    #[test]
    fn unknown_process_is_cold() {
        let cs = CacheSim::new(cfg(), 1);
        assert_eq!(cs.warmth(CPU, 42), 0.0);
    }
}
