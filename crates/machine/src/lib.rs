//! `machine` — model of a bus-based shared-memory multiprocessor.
//!
//! This crate supplies the hardware-level costs that drive the Tucker–Gupta
//! reproduction: context-switch cost, per-processor cache warmth (and the
//! reload penalty paid after corruption), and shared-bus contention. The
//! simulated kernel in the `simkernel` crate consults this model on every
//! dispatch.
//!
//! Two presets are provided: [`MachineConfig::multimax16`], resembling the
//! 16-processor Encore Multimax the paper measured, and
//! [`MachineConfig::scalable16`], resembling the "scalable multiprocessors
//! with 50–100 cycle miss penalties" the paper predicts will suffer far more
//! from cache corruption (used by the miss-penalty ablation).

#![warn(missing_docs)]

mod bus;
mod cache;
mod config;

pub use bus::BusConfig;
pub use cache::{CacheConfig, CacheSim};
pub use config::{CpuId, MachineConfig};
