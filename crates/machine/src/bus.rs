//! Shared-bus contention model.
//!
//! The Encore Multimax is a bus-based machine: every cache miss crosses a
//! single shared bus, so miss latency grows with the number of processors
//! concurrently refilling. We model this with a simple linear factor — exact
//! queueing behaviour is not needed for the paper's figures, only the
//! property that cache corruption hurts *more* when many processors are
//! context-switching at once.

/// Bus contention parameters.
#[derive(Clone, Copy, Debug)]
pub struct BusConfig {
    /// Slope of the contention multiplier: with all other processors busy
    /// missing, a refill costs `(1 + contention_factor)` times its
    /// uncontended latency. Zero disables contention.
    pub contention_factor: f64,
}

impl BusConfig {
    /// Multiplier applied to miss latency when `refilling` of the machine's
    /// `total` processors are concurrently refilling their caches
    /// (including the one asking).
    pub fn contention_multiplier(&self, refilling: usize, total: usize) -> f64 {
        debug_assert!(total >= 1);
        debug_assert!(refilling >= 1, "the asking processor is refilling");
        if total <= 1 {
            return 1.0;
        }
        let others = (refilling.min(total) - 1) as f64 / (total - 1) as f64;
        1.0 + self.contention_factor * others
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_contention_when_alone() {
        let bus = BusConfig {
            contention_factor: 0.5,
        };
        assert_eq!(bus.contention_multiplier(1, 16), 1.0);
    }

    #[test]
    fn full_contention_hits_cap() {
        let bus = BusConfig {
            contention_factor: 0.5,
        };
        let m = bus.contention_multiplier(16, 16);
        assert!((m - 1.5).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_refilling_count() {
        let bus = BusConfig {
            contention_factor: 1.0,
        };
        let mut prev = 0.0;
        for r in 1..=16 {
            let m = bus.contention_multiplier(r, 16);
            assert!(m >= prev);
            prev = m;
        }
    }

    #[test]
    fn uniprocessor_is_uncontended() {
        let bus = BusConfig {
            contention_factor: 2.0,
        };
        assert_eq!(bus.contention_multiplier(1, 1), 1.0);
    }

    #[test]
    fn zero_factor_disables() {
        let bus = BusConfig {
            contention_factor: 0.0,
        };
        assert_eq!(bus.contention_multiplier(16, 16), 1.0);
    }
}
