//! Machine configuration presets.

use desim::SimDur;

use crate::bus::BusConfig;
use crate::cache::CacheConfig;

/// Identifies a physical processor.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CpuId(pub usize);

impl std::fmt::Display for CpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Static description of the simulated shared-memory multiprocessor.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of physical processors.
    pub num_cpus: usize,
    /// Fixed kernel cost of a context switch (register save/restore, address
    /// space switch), excluding cache-refill time which the cache model adds.
    pub context_switch_cost: SimDur,
    /// Cache behaviour.
    pub cache: CacheConfig,
    /// Shared-bus behaviour.
    pub bus: BusConfig,
}

impl MachineConfig {
    /// A 16-processor Encore-Multimax-like machine: moderate per-line miss
    /// cost, bus-based, ~100 us context switches.
    ///
    /// The absolute constants are not calibrated to the NS32332; they are
    /// chosen so that the *ratios* that drive the paper's figures (quantum ≫
    /// switch cost ≫ per-line miss) are representative of 1989 hardware.
    pub fn multimax16() -> Self {
        MachineConfig {
            num_cpus: 16,
            context_switch_cost: SimDur::from_micros(100),
            cache: CacheConfig {
                line_refill_cost: SimDur::from_nanos(500),
                capacity_lines: 2_048,
                evict_tau: SimDur::from_millis(20),
            },
            bus: BusConfig {
                contention_factor: 0.5,
            },
        }
    }

    /// A "scalable multiprocessor" in the paper's Section 2 sense: same
    /// organisation but remote-miss latencies of 50–100 processor cycles,
    /// i.e. per-line refills an order of magnitude more expensive relative
    /// to compute.
    pub fn scalable16() -> Self {
        MachineConfig {
            num_cpus: 16,
            context_switch_cost: SimDur::from_micros(50),
            cache: CacheConfig {
                line_refill_cost: SimDur::from_micros(5),
                capacity_lines: 4_096,
                evict_tau: SimDur::from_millis(20),
            },
            bus: BusConfig {
                contention_factor: 1.0,
            },
        }
    }

    /// Same machine with a different processor count.
    pub fn with_cpus(mut self, n: usize) -> Self {
        assert!(n > 0, "a machine needs at least one processor");
        self.num_cpus = n;
        self
    }

    /// Replaces the cache configuration.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Iterates over the CPU identifiers of this machine.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> {
        (0..self.num_cpus).map(CpuId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let m = MachineConfig::multimax16();
        assert_eq!(m.num_cpus, 16);
        assert!(m.context_switch_cost > SimDur::ZERO);
        let s = MachineConfig::scalable16();
        assert!(s.cache.line_refill_cost > m.cache.line_refill_cost);
    }

    #[test]
    fn with_cpus_overrides() {
        let m = MachineConfig::multimax16().with_cpus(4);
        assert_eq!(m.num_cpus, 4);
        assert_eq!(m.cpus().count(), 4);
        assert_eq!(m.cpus().next(), Some(CpuId(0)));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_cpus_rejected() {
        MachineConfig::multimax16().with_cpus(0);
    }
}
