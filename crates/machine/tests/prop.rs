//! Property tests for the machine model.

use desim::SimDur;
use machine::{BusConfig, CacheConfig, CacheSim, CpuId};
use proptest::prelude::*;

fn cfg() -> CacheConfig {
    CacheConfig {
        line_refill_cost: SimDur::from_nanos(1_000),
        capacity_lines: 1_000,
        evict_tau: SimDur::from_millis(10),
    }
}

proptest! {
    /// Warmth is always a fraction, penalties never exceed a fully cold
    /// reload, and useful work never exceeds elapsed time — under arbitrary
    /// interleavings of dispatch/run across two processes.
    #[test]
    fn cache_invariants_hold(ops in prop::collection::vec((0u8..2, 0u8..2, 1u64..5_000), 1..300)) {
        let mut cs = CacheSim::new(cfg(), 2);
        for (what, who, amount) in ops {
            let tag = who as u64 + 1;
            let cpu = CpuId(0);
            if what == 0 {
                let pen = cs.dispatch(cpu, tag, 100, 1.0);
                // A fully cold reload of 100 lines at 1 us/line.
                prop_assert!(pen <= SimDur::from_micros(100));
            } else {
                let dur = SimDur::from_micros(amount);
                let useful = cs.run(cpu, tag, dur);
                prop_assert!(useful <= dur);
            }
            prop_assert!((0.0..=1.0).contains(&cs.warmth(cpu, tag)));
        }
    }

    /// Bus contention multiplier is always >= 1 and monotone.
    #[test]
    fn bus_multiplier_sane(factor in 0.0f64..4.0, total in 1usize..64) {
        let bus = BusConfig { contention_factor: factor };
        let mut prev = 1.0;
        for refilling in 1..=total {
            let m = bus.contention_multiplier(refilling, total);
            prop_assert!(m >= 1.0);
            prop_assert!(m + 1e-12 >= prev);
            prev = m;
        }
    }

    /// Total refill time paid equals the cold-lines cost charged at dispatch,
    /// no matter how execution is sliced.
    #[test]
    fn refill_conserved_across_slices(slices in prop::collection::vec(1u64..50, 1..40)) {
        let mut cs = CacheSim::new(cfg(), 1);
        let pen = cs.dispatch(CpuId(0), 7, 100, 1.0);
        prop_assert_eq!(pen, SimDur::from_micros(100));
        let mut refill_paid = SimDur::ZERO;
        for us in slices {
            let dur = SimDur::from_micros(us);
            let useful = cs.run(CpuId(0), 7, dur);
            refill_paid += dur - useful;
        }
        prop_assert!(refill_paid <= pen);
        // Once enough time has elapsed, the full penalty has been paid.
        let useful = cs.run(CpuId(0), 7, SimDur::from_micros(200));
        refill_paid += SimDur::from_micros(200) - useful;
        prop_assert_eq!(refill_paid, pen);
    }
}
