//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build container cannot reach crates.io, so the workspace patches
//! `criterion` to this minimal harness. It keeps the call-site API
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`) and reports a simple mean wall-clock time per benchmark
//! instead of criterion's full statistical analysis. Passing `--test` (as
//! `cargo test --benches` does) runs each benchmark exactly once.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies a benchmark within a group, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iterations` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` / `cargo bench` pass harness flags; `--test` means
        // "run each benchmark once to check it works".
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            test_mode,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let (test_mode, samples) = (self.test_mode, self.sample_size);
        run_one(name, test_mode, samples, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(&mut self, id: I, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.criterion.test_mode,
            self.criterion.sample_size,
            f,
        );
        self
    }

    /// Benchmarks `f` with an input value under `id` within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.criterion.test_mode,
            self.criterion.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, samples: usize, mut f: F) {
    if test_mode {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }
    // Warm-up pass, then `samples` timed iterations; report the mean.
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut total = Duration::ZERO;
    let mut runs = 0u32;
    for _ in 0..samples {
        f(&mut b);
        total += b.elapsed;
        runs += 1;
    }
    let mean = total / runs.max(1);
    println!("{name:<60} time: [{mean:?} mean of {runs}]");
}

/// Groups benchmark functions under a single callable, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 2,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran >= 1);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 1,
        };
        let mut seen = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
                b.iter(|| seen = x);
            });
            g.finish();
        }
        assert_eq!(seen, 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
