//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace patches
//! `parking_lot` to this std-backed implementation. Only the API surface the
//! repo actually exercises is provided: `Mutex` with a poison-free `lock()`,
//! and `Condvar` with `wait` / `wait_for` taking `&mut MutexGuard`.
//!
//! Semantics match parking_lot where it matters to callers: lock poisoning is
//! transparently ignored (a panicked holder does not wedge the lock), and
//! condvar waits reacquire the same mutex.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive whose `lock` returns the guard directly
/// (no `Result`), ignoring poisoning like `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds `Option<std::sync::MutexGuard>` so `Condvar::wait` can
/// temporarily take ownership of the std guard (std's wait consumes it by
/// value) and put the reacquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`], taking guards by `&mut`
/// like `parking_lot::Condvar`.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let reacquired = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (reacquired, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (mu, cv) = &*p2;
            let mut done = mu.lock();
            *done = true;
            cv.notify_one();
        });
        let (mu, cv) = &*pair;
        let mut done = mu.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().expect("join");
        assert!(*done);
    }

    #[test]
    fn wait_for_times_out() {
        let mu = Mutex::new(());
        let cv = Condvar::new();
        let mut g = mu.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
