//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build container cannot reach crates.io, so the workspace patches
//! `proptest` to this self-contained engine. It keeps the call-site syntax
//! of real proptest — `proptest! { #[test] fn f(x in strat) { .. } }`,
//! `prop_assert!`, `prop::collection::vec`, `prop_oneof!`, `Just`,
//! `.prop_map()`, `any::<T>()`, and range / tuple / `&str`-pattern
//! strategies — but drops shrinking: a failing case panics with the test
//! name and case number, which is enough to reproduce deterministically
//! because the RNG is seeded from the test name.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic splitmix64 generator used to drive sampling.
///
/// Seeded from the test function name so every run of a given test explores
/// the same case sequence (no flaky CI, trivially reproducible failures).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name, mixed with a fixed tweak so the
        // all-empty name still produces a lively stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`; `hi > lo` required.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test values. This shim samples without shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `choices` (must be non-empty).
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Self { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.range_u64(0, self.choices.len() as u64) as usize;
        self.choices[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.range_u64(0, span) as i64) as i32
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.range_u64(0, span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// `&str` regex-style strategy supporting the `[class]{lo,hi}` shape
/// (plus `[class]{n}` and a bare `[class]` meaning one char). Character
/// classes may contain literal chars and `a-z` style ranges.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern in offline proptest shim: {self:?} (only `[class]{{lo,hi}}` is implemented)"));
        let len = rng.range_u64(lo as u64, hi as u64 + 1) as usize;
        (0..len)
            .map(|_| alphabet[rng.range_u64(0, alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` / `[class]{n}` / `[class]` into
/// (alphabet, min_len, max_len). Returns `None` on anything else.
fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let quant = &rest[close + 1..];
    if quant.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let inner = quant.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match inner.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = inner.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Types that have a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread; avoids NaN/inf which the real
        // crate also excludes by default.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy producing arbitrary values of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number-of-elements specification: an exact count or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Declares property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..config.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest shim: {} failed at case {}/{} (deterministic seed; rerun reproduces)",
                        stringify!($name), __case + 1, config.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Mirrors `proptest::prelude::prop` (module access to strategies).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{parse_pattern, TestRng};

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn pattern_parser_handles_classes_and_quantifiers() {
        let (alpha, lo, hi) = parse_pattern("[a-z0-9]{0,12}").expect("parses");
        assert_eq!(alpha.len(), 36);
        assert_eq!((lo, hi), (0, 12));
        let (alpha, lo, hi) = parse_pattern("[ab]{3}").expect("parses");
        assert_eq!(alpha, vec!['a', 'b']);
        assert_eq!((lo, hi), (3, 3));
        assert!(parse_pattern("plain text").is_none());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.5).sample(&mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (1u32..5).prop_map(|x| x * 2),
            Just(100u32),
        ]) {
            prop_assert!(v == 100 || (v % 2 == 0 && v < 10));
        }

        #[test]
        fn string_pattern_sampled(s in "[a-c]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
