//! Offline shim for the subset of `loom` this workspace uses.
//!
//! The build container cannot reach crates.io, so the workspace patches
//! `loom` to this fallback. Real loom exhaustively explores thread
//! interleavings under a simulated memory model; this shim keeps the
//! call-site API (`loom::model`, `loom::thread::spawn`,
//! `loom::sync::atomic::*`) but explores stochastically instead: each
//! `model` closure runs many times on real threads, with the spawn wrapper
//! yielding at thread start to perturb schedules. That turns the
//! `cfg(loom)` tests into a deterministic-API stress harness — far weaker
//! than real loom, but it exercises the same interleaving-sensitive code
//! paths under the race detector lanes (see the ThreadSanitizer CI job),
//! and the tests run unchanged against real loom when a network-enabled
//! checkout swaps the shim out.

/// How many times [`model`] replays its closure.
pub const MODEL_ITERATIONS: usize = 256;

/// Runs `f` repeatedly, standing in for loom's exhaustive exploration.
///
/// Panics propagate out of the first failing iteration, like real loom's
/// first counterexample.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..MODEL_ITERATIONS {
        f();
    }
}

/// Mirror of `loom::thread`: real threads, with a scheduling perturbation
/// at spawn so successive [`model`] iterations interleave differently.
pub mod thread {
    pub use std::thread::{yield_now, JoinHandle};

    /// Spawns a real thread that yields once before running `f`, nudging
    /// the OS scheduler toward varied interleavings across iterations.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            std::thread::yield_now();
            f()
        })
    }
}

/// Mirror of `loom::hint`.
pub mod hint {
    pub use std::hint::spin_loop;
}

/// Mirror of `loom::sync`: the std types (real loom substitutes checked
/// versions; the shim's guarantees come from running on real hardware).
pub mod sync {
    pub use std::sync::{Arc, Mutex};

    /// Mirror of `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_replays_and_threads_run() {
        let total = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&total);
        super::model(move || {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let h = super::thread::spawn(move || n2.fetch_add(1, Ordering::SeqCst));
            n.fetch_add(1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2);
            t2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), super::MODEL_ITERATIONS);
    }
}
