//! Cross-crate integration: pieces from different layers composed in ways
//! the figure harnesses don't exercise.

use bench::{spawn_server, SimEnv};
use desim::{SimDur, SimTime};
use simkernel::AppId;
use uthreads::{launch, AppSpec, Task, ThreadsConfig};
use workloads::load::{spawn_batch_load, spawn_interactive_load};
use workloads::{producer_consumer_spec, synthetic_cs_spec};

const LIMIT: SimTime = SimTime(3_600 * 1_000_000_000);

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDur::from_secs(s)
}

/// Uncontrollable batch load shrinks a controlled application's share;
/// the share is restored when the load drains (Section 5's partitioning
/// with uncontrolled processes subtracted).
#[test]
fn batch_load_shrinks_controlled_share() {
    let env = SimEnv {
        cpus: 8,
        ..SimEnv::default()
    };
    let mut kernel = env.make_kernel();
    let server = spawn_server(&mut kernel);
    let tasks: Vec<Task> = (0..25_000)
        .map(|_| Task::compute("w", SimDur::from_millis(20)))
        .collect();
    let cfg = ThreadsConfig::new(8).with_control(server, SimDur::from_secs(1));
    let app = launch(&mut kernel, AppId(0), cfg, AppSpec::tasks(tasks));

    // 4 batch processes for ~20 s.
    spawn_batch_load(&mut kernel, AppId(60), 4, SimDur::from_secs(20), 256);

    kernel.run_until(secs(6));
    let squeezed = app.target().unwrap();
    assert!(squeezed <= 5, "target with batch load: {squeezed}");

    // Batch load ends by ~40 s (4 jobs x 20 s on >=4 free cpus); the
    // application should claim the whole machine again.
    kernel.run_until(secs(60));
    assert!(!app.is_done(), "sized to outlive the batch load");
    let restored = app.target().unwrap();
    assert_eq!(restored, 8, "target after batch load drained");
    assert!(kernel.run_until_apps_done(&[AppId(0)], LIMIT));
}

/// Interactive load (mostly sleeping) barely affects the controlled
/// application's share: a sleeping editor is not runnable.
#[test]
fn interactive_load_is_nearly_free() {
    let env = SimEnv {
        cpus: 8,
        ..SimEnv::default()
    };
    let mut kernel = env.make_kernel();
    let server = spawn_server(&mut kernel);
    // Editor: 10 ms bursts, 990 ms think time: ~1% of one processor.
    spawn_interactive_load(
        &mut kernel,
        AppId(50),
        SimDur::from_millis(10),
        SimDur::from_millis(990),
        600,
        128,
    );
    let tasks: Vec<Task> = (0..20_000)
        .map(|_| Task::compute("w", SimDur::from_millis(20)))
        .collect();
    let cfg = ThreadsConfig::new(8).with_control(server, SimDur::from_secs(1));
    let app = launch(&mut kernel, AppId(0), cfg, AppSpec::tasks(tasks));
    kernel.run_until(secs(10));
    assert!(!app.is_done());
    // The editor is almost never runnable at sample time, so the target
    // stays at (or within one of) the full machine.
    let target = app.target().unwrap();
    assert!(
        target >= 7,
        "interactive load over-penalized: target {target}"
    );
    assert!(kernel.run_until_apps_done(&[AppId(0)], LIMIT));
}

/// The synthetic critical-section workload completes and its lock sees
/// real contention under overcommit.
#[test]
fn synthetic_cs_workload_contends() {
    let env = SimEnv {
        cpus: 4,
        ..SimEnv::default()
    };
    let mut kernel = env.make_kernel();
    let lock = kernel.create_lock();
    let spec = synthetic_cs_spec(64, 4, SimDur::from_millis(10), 0.3, lock);
    launch(&mut kernel, AppId(0), ThreadsConfig::new(12), spec);
    assert!(kernel.run_until_apps_done(&[AppId(0)], LIMIT));
    let stats = kernel.lock_stats(lock);
    assert_eq!(stats.acquisitions, 64 * 4);
    assert!(
        stats.contended > 0,
        "no contention with 12 workers on 4 cpus"
    );
}

/// The producer/consumer workload exhibits the paper's mechanism #2:
/// consumers waste time idling while producers are preempted — and
/// process control reduces that waste.
#[test]
fn producer_consumer_benefits_from_control() {
    let run = |control: bool| -> (f64, f64) {
        let env = SimEnv {
            cpus: 4,
            ..SimEnv::default()
        };
        let mut kernel = env.make_kernel();
        let server = spawn_server(&mut kernel);
        let spec = producer_consumer_spec(8, 60, SimDur::from_millis(6), SimDur::from_millis(6));
        let mut cfg = ThreadsConfig::new(16);
        if control {
            cfg = cfg.with_control(server, SimDur::from_secs(1));
        }
        let app = launch(&mut kernel, AppId(0), cfg, spec);
        assert!(kernel.run_until_apps_done(&[AppId(0)], LIMIT));
        let wall = kernel.app_done_time(AppId(0)).unwrap().as_secs_f64();
        (wall, app.metrics().idle_spin.as_secs_f64())
    };
    let (wall_plain, _idle_plain) = run(false);
    let (wall_ctl, _idle_ctl) = run(true);
    // 16 workers on 4 cpus for a pipeline: control should not hurt and
    // usually helps.
    assert!(
        wall_ctl <= wall_plain * 1.10,
        "control hurt the pipeline: {wall_ctl:.2}s vs {wall_plain:.2}s"
    );
}

/// The native runtime computes the same answers as the sequential
/// reference kernels while under process control.
#[test]
fn native_pool_computes_correct_matmul() {
    use std::sync::Arc;
    use workloads::native::matmul::{matmul, matmul_rows, Matrix};

    let controller = native_rt::Controller::new(2, std::time::Duration::from_millis(20));
    let pool = native_rt::Pool::new(&controller, 6, false);
    let n = 64;
    let a = Arc::new(Matrix::from_fn(n, n, |i, j| ((i + 2 * j) % 7) as f64));
    let b = Arc::new(Matrix::from_fn(n, n, |i, j| ((3 * i + j) % 5) as f64));
    let out = Arc::new(parking_lot::Mutex::new(Matrix::zeros(n, n)));
    for row in 0..n {
        let (a, b, out) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&out));
        pool.execute(move || {
            let mut local = Matrix::zeros(n, n);
            matmul_rows(&a, &b, &mut local, row..row + 1);
            let mut o = out.lock();
            o.data[row * n..(row + 1) * n].copy_from_slice(&local.data[row * n..(row + 1) * n]);
        });
    }
    pool.wait_idle();
    let expect = matmul(&a, &b);
    assert_eq!(out.lock().data, expect.data);
    assert_eq!(pool.metrics().jobs_run, n as u64);
}
