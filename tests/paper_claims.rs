//! Workspace-level integration tests: the paper's qualitative claims,
//! asserted end-to-end on the full stack (simulated machine → kernel →
//! threads package → process control) at reduced scale.

use bench::{
    fig1, fig3, fig4_with_stagger, fig5_with_stagger, run_scenario, run_solo, AppKind, AppLaunch,
    PolicyKind, SimEnv,
};
use desim::{SimDur, SimTime};
use workloads::Presets;

const LIMIT: SimTime = SimTime(3_600 * 1_000_000_000);

fn env8() -> SimEnv {
    SimEnv {
        cpus: 8,
        ..SimEnv::default()
    }
}

/// Mid-scale presets: big enough that applications live through several
/// poll intervals (so control actually engages), ~10x smaller than the
/// paper scale so the suite stays fast.
fn midi() -> Presets {
    use workloads::{FftParams, GaussParams, MatmulParams, SortParams};
    Presets {
        matmul: MatmulParams {
            tasks: 2_000,
            task_cost: SimDur::from_millis(20),
        },
        fft: FftParams {
            phases: 24,
            chunks: 32,
            chunk_cost: SimDur::from_millis(50),
        },
        sort: SortParams {
            leaves: 128,
            leaf_cost: SimDur::from_millis(150),
            merge_unit: SimDur::from_millis(10),
        },
        gauss: GaussParams {
            steps: 48,
            row_cost: SimDur::from_millis(100),
            pivot_cost: SimDur::from_millis(10),
        },
    }
}

/// Claim (Section 2 / Figure 1): performance of simultaneously running
/// applications worsens considerably once the total process count exceeds
/// the processor count, and keeps worsening as processes are added.
#[test]
fn claim_overcommit_degrades_pairs() {
    let presets = Presets::tiny();
    let series = fig1(&env8(), &presets, &[4, 8, 16]);
    for s in &series {
        let at_fit = s.points[0].1; // 4+4 = 8 procs = machine
        let over = s.points[1].1; // 8+8 = 2x overcommit
        let way_over = s.points[2].1; // 16+16 = 4x
        assert!(
            over < at_fit * 0.98,
            "{}: no degradation at 2x ({at_fit:.2} -> {over:.2})",
            s.label
        );
        assert!(
            way_over < at_fit * 0.95,
            "{}: no degradation at 4x ({at_fit:.2} -> {way_over:.2})",
            s.label
        );
    }
}

/// Claim (Figure 3, observation 2): up to the processor count, the
/// controlled and unmodified packages perform identically — the control
/// overhead is negligible.
#[test]
fn claim_control_overhead_negligible() {
    let presets = Presets::tiny();
    let results = fig3(&env8(), &presets, &[2, 8], SimDur::from_secs(2));
    for (kind, plain, ctl) in &results {
        for (p, c) in plain.points.iter().zip(&ctl.points) {
            let ratio = c.1 / p.1;
            assert!(
                (0.93..=1.08).contains(&ratio),
                "{}: controlled/unmodified = {ratio:.3} at {} procs",
                kind.name(),
                p.0
            );
        }
    }
}

/// Claim (Figure 3, observation 3): beyond the processor count the
/// unmodified package is significantly worse than the controlled one.
#[test]
fn claim_control_wins_when_overcommitted() {
    let presets = midi();
    // 24 workers on 8 CPUs, solo. Use the lock-heavy gauss and the pure
    // matmul as the two extremes.
    for kind in [AppKind::Gauss, AppKind::Matmul] {
        let plain = run_solo(&env8(), &presets, kind, 24, None, LIMIT);
        let ctl = run_solo(
            &env8(),
            &presets,
            kind,
            24,
            Some(SimDur::from_secs(1)),
            LIMIT,
        );
        assert!(
            ctl.wall < plain.wall,
            "{}: control did not help ({:.2}s vs {:.2}s)",
            kind.name(),
            ctl.wall,
            plain.wall
        );
        assert!(ctl.metrics.suspends > 0, "control never engaged");
    }
}

/// Claim (Figure 4): in the multiprogrammed three-application scenario,
/// every application finishes at least as fast under process control, and
/// at least one improves substantially.
#[test]
fn claim_multiprogrammed_improvement() {
    let presets = midi();
    let rows = fig4_with_stagger(
        &env8(),
        &presets,
        16,
        SimDur::from_secs(1),
        SimDur::from_secs(3),
    );
    let mut best = 0.0f64;
    for r in &rows {
        assert!(
            r.controlled <= r.uncontrolled * 1.10,
            "{}: control made it notably slower ({:.2}s vs {:.2}s)",
            r.kind.name(),
            r.controlled,
            r.uncontrolled
        );
        best = best.max(r.uncontrolled / r.controlled);
    }
    assert!(
        best > 1.2,
        "no application improved substantially: {best:.2}x"
    );
}

/// Claim (Figure 5): with control, the total number of runnable processes
/// converges to (about) the machine size within a couple of poll
/// intervals, and without control it reaches the full process count.
#[test]
fn claim_runnable_count_converges() {
    let presets = midi();
    let poll = SimDur::from_secs(1);
    let (ctl, plain) = fig5_with_stagger(&env8(), &presets, 16, poll, SimDur::from_secs(3));
    let total_ctl = &ctl[3];
    let total_plain = &plain[3];
    // Uncontrolled: essentially all 48 worker processes runnable at the
    // overlap peak.
    assert!(
        total_plain.y_max() >= 40.0,
        "uncontrolled peak only {}",
        total_plain.y_max()
    );
    // Controlled: once all three apps have polled at least once (three
    // staggers + a poll in), the mean runnable count over the busy middle
    // should sit near the machine size, far below the uncontrolled peak.
    let mid_mean = total_ctl.step_mean(8.0, 14.0);
    assert!(
        mid_mean <= 13.0,
        "controlled mean runnable {mid_mean:.1} over the busy window"
    );
    assert!(mid_mean >= 5.0, "machine left idle: {mid_mean:.1}");
}

/// Claim (Section 5): the server partitions processors *equally* among
/// coexisting controlled applications.
#[test]
fn claim_equal_partition_while_coexisting() {
    let presets = Presets::tiny();
    let env = env8();
    let launches = [
        AppLaunch {
            kind: AppKind::Matmul,
            nprocs: 8,
            start: SimTime::ZERO,
        },
        AppLaunch {
            kind: AppKind::Matmul,
            nprocs: 8,
            start: SimTime::ZERO,
        },
    ];
    let mut env_tr = env;
    env_tr.trace = true;
    let (outs, kernel) = run_scenario(
        &env_tr,
        &presets,
        &launches,
        Some(SimDur::from_secs(1)),
        LIMIT,
    );
    // Both identical applications should finish at nearly the same time.
    let (a, b) = (outs[0].wall, outs[1].wall);
    assert!(
        (a - b).abs() / a.max(b) < 0.15,
        "unequal split: {a:.2}s vs {b:.2}s"
    );
    drop(kernel);
}

/// The related-work baselines all run the scenario to completion (sanity
/// across every scheduling policy).
#[test]
fn all_policies_complete_the_scenario() {
    let presets = Presets::tiny();
    for policy in PolicyKind::ALL {
        let env = SimEnv {
            cpus: 8,
            policy,
            ..SimEnv::default()
        };
        let launches = [
            AppLaunch {
                kind: AppKind::Fft,
                nprocs: 12,
                start: SimTime::ZERO,
            },
            AppLaunch {
                kind: AppKind::Sort,
                nprocs: 12,
                start: SimTime::ZERO,
            },
        ];
        let (outs, _) = run_scenario(&env, &presets, &launches, None, LIMIT);
        assert_eq!(outs.len(), 2, "policy {}", policy.name());
    }
}

/// Determinism: an identical scenario reproduces identical results.
#[test]
fn scenario_is_deterministic() {
    let presets = Presets::tiny();
    let run = || {
        let rows = fig4_with_stagger(
            &env8(),
            &presets,
            8,
            SimDur::from_secs(1),
            SimDur::from_millis(500),
        );
        rows.iter()
            .flat_map(|r| [r.controlled.to_bits(), r.uncontrolled.to_bits()])
            .collect::<Vec<u64>>()
    };
    assert_eq!(run(), run());
}
