//! Observability-pipeline tests: cycle-ledger conservation on the
//! Figure-4 scenario, the control-on vs control-off waste deltas, the
//! server's decision log, convergence measurement, the flight-recorder
//! latency derivations (native and simulated wake-to-run), the merged
//! fleet timeline, and the validity of the Perfetto/JSON exports.

use bench::{
    fig4_launches, report_json, run_scenario_instrumented, scenario_trace, ScenarioRun, SimEnv,
};
use desim::{SimDur, SimTime};
use metrics::{json, JsonValue};
use workloads::Presets;

const LIMIT: SimTime = SimTime(3_600 * 1_000_000_000);

fn quick_env() -> SimEnv {
    SimEnv {
        trace: true,
        ..SimEnv::default()
    }
}

fn run(poll: Option<SimDur>) -> ScenarioRun {
    let presets = Presets::tiny();
    let launches = fig4_launches(8, SimDur::from_millis(500));
    run_scenario_instrumented(&quick_env(), &presets, &launches, poll, LIMIT)
}

#[test]
fn fig4_ledger_conserves_and_control_reduces_waste() {
    let un = run(None);
    let ctl = run(Some(SimDur::from_millis(250)));

    // Every processor-cycle of both runs is attributed to exactly one
    // category: the table's columns sum to cpus × elapsed.
    assert!(un.ledger.conserved(), "uncontrolled ledger leaks cycles");
    assert!(ctl.ledger.conserved(), "controlled ledger leaks cycles");
    for r in [&un, &ctl] {
        for a in &r.apps {
            let c = r.ledger.per_app.get(&a.app).expect("app in ledger");
            assert!(c.work.nanos() > 0, "{:?} did no work", a.kind);
        }
    }

    // The paper's mechanism: process control eliminates spin-wait and
    // cache-refill waste.
    let waste = |r: &ScenarioRun| r.ledger.total.spin + r.ledger.total.refill;
    assert!(
        waste(&ctl) < waste(&un),
        "control did not reduce spin+refill: {:?} vs {:?}",
        waste(&ctl),
        waste(&un)
    );

    // Control artifacts exist exactly when control ran.
    assert!(un.sweeps.is_empty());
    assert!(!ctl.sweeps.is_empty(), "no partition sweeps recorded");
    assert!(ctl.sweeps.iter().any(|s| !s.apps.is_empty()));
    assert!(un.apps.iter().all(|a| a.convergence.is_empty()));
    assert!(
        ctl.apps.iter().any(|a| !a.convergence.is_empty()),
        "no poll-to-convergence latency observed"
    );
    for a in &ctl.apps {
        assert!(!a.spans.is_empty(), "{:?} recorded no spans", a.kind);
        for &(at, lat) in &a.convergence {
            assert!(at >= a.start);
            assert!(lat.nanos() > 0);
        }
    }

    // The JSON report round-trips through the strict parser and carries
    // the conservation verdicts.
    let doc = report_json(
        JsonValue::obj([("quick", JsonValue::Bool(true))]),
        &un,
        &ctl,
    );
    let back = json::parse(&doc.render_pretty()).expect("report is valid JSON");
    for mode in ["uncontrolled", "controlled"] {
        let m = back.get(mode).expect("mode present");
        assert_eq!(m.get("conserved"), Some(&JsonValue::Bool(true)), "{mode}");
        assert_eq!(
            m.get("apps").and_then(|v| v.as_arr()).map(|a| a.len()),
            Some(3)
        );
    }
    let spin_saved = back
        .get("deltas")
        .and_then(|d| d.get("spin_saved_s"))
        .and_then(|v| v.as_num())
        .expect("spin delta");
    let un_spin = un.ledger.total.spin.as_secs_f64();
    let ctl_spin = ctl.ledger.total.spin.as_secs_f64();
    assert!((spin_saved - (un_spin - ctl_spin)).abs() < 1e-9);
}

#[test]
fn perfetto_export_is_valid_json_with_consistent_timestamps() {
    let ctl = run(Some(SimDur::from_millis(250)));
    let doc = scenario_trace(&ctl).finish().render();
    let back = json::parse(&doc).expect("trace is valid JSON");
    let events = back
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(
        events.len() > 100,
        "suspiciously small trace: {}",
        events.len()
    );

    // Every event is well-formed: a phase, a non-negative timestamp, and
    // (for complete slices) a non-negative duration.
    let mut slices: std::collections::BTreeMap<(u64, u64, String), Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    let mut phases: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for e in events {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("ph")
            .to_string();
        let ts = e.get("ts").and_then(|v| v.as_num()).expect("ts");
        assert!(ts >= 0.0, "negative timestamp {ts}");
        if ph == "X" {
            let dur = e.get("dur").and_then(|v| v.as_num()).expect("dur");
            assert!(dur >= 0.0, "negative duration {dur}");
            let pid = e.get("pid").and_then(|v| v.as_num()).expect("pid") as u64;
            let tid = e.get("tid").and_then(|v| v.as_num()).expect("tid") as u64;
            let cat = e
                .get("cat")
                .and_then(|v| v.as_str())
                .expect("cat")
                .to_string();
            slices.entry((pid, tid, cat)).or_default().push((ts, dur));
        }
        phases.insert(ph);
    }
    for need in ["M", "X", "C"] {
        assert!(phases.contains(need), "no {need} events in trace");
    }

    // Slices on one track (same pid/tid/category) never overlap: sorted
    // by start, each begins at or after the previous one's end.
    for ((pid, tid, cat), mut sl) in slices {
        sl.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite ts"));
        for w in sl.windows(2) {
            let (ts0, dur0) = w[0];
            let (ts1, _) = w[1];
            assert!(
                ts1 >= ts0 + dur0 - 1e-6,
                "overlapping slices on pid {pid} tid {tid} cat {cat}: \
                 [{ts0}, {}) then {ts1}",
                ts0 + dur0
            );
        }
    }
}

/// The native flight recorder's derived wake-to-run latency is sane on a
/// real suspend/resume cycle: present once a squeezed pool is released,
/// strictly positive, and bounded by the test's own wall-clock.
#[test]
fn native_wake_to_run_latency_is_plausible() {
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;

    let slot = Arc::new(native_rt::TargetSlot::new(4));
    let pool = native_rt::Pool::with_slot(Arc::clone(&slot), 4, false);
    let start = std::time::Instant::now();
    slot.target.store(1, Ordering::Release);
    for _ in 0..200 {
        pool.execute(|| std::thread::sleep(Duration::from_micros(50)));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while pool.metrics().suspends == 0 {
        assert!(std::time::Instant::now() < deadline, "no worker suspended");
        std::thread::sleep(Duration::from_millis(2));
    }
    slot.target.store(4, Ordering::Release);
    for _ in 0..200 {
        pool.execute(|| std::thread::sleep(Duration::from_micros(50)));
    }
    pool.wait_idle();
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    let snap = pool.stats();
    let h = &snap.histograms["wake_to_run_ns"];
    assert!(h.count >= 1, "no wake-to-run samples after resume");
    assert!(h.mean() > 0.0, "wake-to-run mean must be positive");
    let p99 = h.quantile(0.99).expect("p99 with samples");
    assert!(
        p99 <= elapsed_ns,
        "wake-to-run p99 ({p99} ns) exceeds the whole run ({elapsed_ns} ns)"
    );
}

/// The simulation's mirror of the same metric: on a controlled Figure-4
/// run, `uthreads::wake_to_run` pairs each resume with that worker's
/// next task pickup, and every latency is positive and within the run.
#[test]
fn sim_wake_to_run_mirrors_native_histogram() {
    let ctl = run(Some(SimDur::from_millis(250)));
    let mut total = 0usize;
    for a in &ctl.apps {
        for (pid, woke, lat) in uthreads::wake_to_run(&a.spans) {
            assert!(lat.nanos() > 0, "zero wake-to-run for {pid:?}");
            assert!(woke >= a.start, "wake before app launch");
            total += 1;
        }
    }
    assert!(
        total >= 1,
        "controlled run produced no wake-to-run samples (no resumes?)"
    );
}

/// The merged fleet timeline (two pools, one controller, decision
/// instants) is valid JSON, shows both applications, and every track's
/// slices are time-ordered and non-overlapping — the "merged traces
/// never go backwards" guarantee of the single clock origin.
#[test]
fn fleet_timeline_is_valid_and_monotonic_per_track() {
    let doc = bench::fleettrace::fleet_drill(64).finish().render();
    let back = json::parse(&doc).expect("fleet timeline is valid JSON");
    let events = back
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents");

    let mut pids = std::collections::BTreeSet::new();
    let mut slices: std::collections::BTreeMap<(u64, u64), Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    let mut decisions = std::collections::BTreeSet::new();
    for e in events {
        let ts = e.get("ts").and_then(|v| v.as_num()).unwrap_or(0.0);
        assert!(ts.is_finite() && ts >= 0.0, "bad timestamp {ts}");
        let pid = e.get("pid").and_then(|v| v.as_num()).expect("pid") as u64;
        let tid = e.get("tid").and_then(|v| v.as_num()).unwrap_or(0.0) as u64;
        pids.insert(pid);
        match e.get("ph").and_then(|v| v.as_str()) {
            Some("X") => {
                let dur = e.get("dur").and_then(|v| v.as_num()).expect("dur");
                assert!(dur >= 0.0, "negative duration {dur}");
                slices.entry((pid, tid)).or_default().push((ts, dur));
            }
            Some("i") if e.get("name").and_then(|v| v.as_str()) == Some("decision") => {
                decisions.insert(pid);
            }
            _ => {}
        }
    }
    assert_eq!(
        pids.into_iter().collect::<Vec<_>>(),
        vec![1, 2],
        "expected exactly the two drill applications"
    );
    assert_eq!(
        decisions.into_iter().collect::<Vec<_>>(),
        vec![1, 2],
        "both applications need decision instants"
    );
    for ((pid, tid), mut sl) in slices {
        sl.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite ts"));
        for w in sl.windows(2) {
            let (ts0, dur0) = w[0];
            let (ts1, _) = w[1];
            assert!(
                ts1 >= ts0 + dur0 - 1e-6,
                "track pid {pid} tid {tid} goes backwards: [{ts0}, {}) then {ts1}",
                ts0 + dur0
            );
        }
    }
}
